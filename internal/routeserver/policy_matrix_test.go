package routeserver

import (
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/obs"
)

// TestPolicyPropagationMatrix walks the paper's propagation matrix
// (§4.1/§4.2): prefix-length class crossed with the receiving member's
// import policy. Each cell pins the resulting drop fraction AND the
// metrics counter that must account for the import decision, so the
// observability layer is verified against the same ground truth as the
// forwarding behaviour.
func TestPolicyPropagationMatrix(t *testing.T) {
	partial := Policy{Standard: AcceptFull, Host: AcceptPartial, HostFraction: 0.4}
	midReady := Policy{Standard: AcceptFull, Mid: AcceptFull, Host: AcceptFull}
	rejectAll := Policy{Standard: AcceptNone, Mid: AcceptNone, Host: AcceptNone}

	cases := []struct {
		name     string
		prefix   string
		victim   string
		policy   Policy
		wantFrac float64
		// exactly one import counter must read 1 after the announcement
		wantCounter string
	}{
		{"slash24/default", "203.0.113.0/24", "203.0.113.77", DefaultPolicy(), 1, "accepted"},
		{"slash24/blackhole-ready", "203.0.113.0/24", "203.0.113.77", BlackholeReadyPolicy(), 1, "accepted"},
		{"slash24/reject-all", "203.0.113.0/24", "203.0.113.77", rejectAll, 0, "rejected_standard"},
		{"slash25/default", "203.0.113.128/25", "203.0.113.200", DefaultPolicy(), 0, "rejected_mid"},
		{"slash28/default", "203.0.113.16/28", "203.0.113.18", DefaultPolicy(), 0, "rejected_mid"},
		{"slash28/blackhole-ready", "203.0.113.16/28", "203.0.113.18", BlackholeReadyPolicy(), 0, "rejected_mid"},
		{"slash28/mid-ready", "203.0.113.16/28", "203.0.113.18", midReady, 1, "accepted"},
		{"slash31/blackhole-ready", "203.0.113.8/31", "203.0.113.9", BlackholeReadyPolicy(), 0, "rejected_mid"},
		{"slash32/default", "203.0.113.5/32", "203.0.113.5", DefaultPolicy(), 0, "rejected_host"},
		{"slash32/blackhole-ready", "203.0.113.5/32", "203.0.113.5", BlackholeReadyPolicy(), 1, "accepted"},
		{"slash32/partial", "203.0.113.5/32", "203.0.113.5", partial, 0.4, "accepted"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, map[uint32]Policy{
				100: BlackholeReadyPolicy(), // origin, never a target
				200: tc.policy,
			})
			anns, err := s.Process(time.Unix(0, 0), 100, blackholeUpdate(tc.prefix))
			if err != nil {
				t.Fatal(err)
			}
			if len(anns) != 1 || len(anns[0].Targets) != 1 || anns[0].Targets[0] != 200 {
				t.Fatalf("announcement = %+v, want single target 200", anns)
			}
			if f := s.DropFraction(200, mustAddr(t, tc.victim)); f != tc.wantFrac {
				t.Errorf("drop fraction = %v, want %v", f, tc.wantFrac)
			}
			m := s.Metrics()
			got := map[string]int64{
				"accepted":          m.ImportAccepted.Value(),
				"rejected_standard": m.ImportRejectedStandard.Value(),
				"rejected_mid":      m.ImportRejectedMid.Value(),
				"rejected_host":     m.ImportRejectedHost.Value(),
			}
			for name, v := range got {
				want := int64(0)
				if name == tc.wantCounter {
					want = 1
				}
				if v != want {
					t.Errorf("import.%s = %d, want %d (counters: %v)", name, v, want, got)
				}
			}
			if m.AnnouncedPrefixes.Value() != 1 || m.Updates.Value() != 1 {
				t.Errorf("announced=%d updates=%d, want 1/1",
					m.AnnouncedPrefixes.Value(), m.Updates.Value())
			}
		})
	}
}

// TestMissingBlackholeCommunityRejected pins the error path for an
// announcement without the RFC 7999 community and its dedicated counter.
func TestMissingBlackholeCommunityRejected(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy(), 200: DefaultPolicy()})
	upd := blackholeUpdate("203.0.113.5/32")
	upd.Attrs.Communities = bgp.Communities{bgp.NoExport}
	if _, err := s.Process(time.Unix(0, 0), 100, upd); err == nil {
		t.Fatal("announcement without BLACKHOLE community accepted")
	}
	m := s.Metrics()
	if m.RejectedNoBlackhole.Value() != 1 {
		t.Errorf("rejected_no_blackhole_community = %d, want 1", m.RejectedNoBlackhole.Value())
	}
	// The update was still counted (it reached the server), but nothing
	// was announced.
	if m.Updates.Value() != 1 || m.AnnouncedPrefixes.Value() != 0 {
		t.Errorf("updates=%d announced=%d, want 1/0", m.Updates.Value(), m.AnnouncedPrefixes.Value())
	}
	if s.NumActiveRoutes() != 0 {
		t.Errorf("active routes = %d", s.NumActiveRoutes())
	}
}

// TestSteeringCommunitiesMetrics covers announcements carrying multiple
// steering communities and checks the not_targeted accounting: excluded
// peers are counted once each, targeted peers produce import outcomes.
func TestSteeringCommunitiesMetrics(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: BlackholeReadyPolicy(),
		400: DefaultPolicy(),
	})
	ts := time.Unix(0, 0)

	// Exclude 300 only: targets 200 and 400.
	if _, err := s.Process(ts, 100, blackholeUpdate("203.0.113.5/32",
		bgp.MakeCommunity(0, 300))); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.NotTargeted.Value() != 1 {
		t.Fatalf("not_targeted after exclude = %d, want 1", m.NotTargeted.Value())
	}
	if m.ImportAccepted.Value() != 1 || m.ImportRejectedHost.Value() != 1 {
		t.Fatalf("accepted=%d rejected_host=%d, want 1/1 (200 accepts, 400 rejects)",
			m.ImportAccepted.Value(), m.ImportRejectedHost.Value())
	}

	// Allow-list mode with an overriding block: only 200 remains targeted,
	// so 300 and 400 add two more not_targeted outcomes.
	if _, err := s.Process(ts, 100, blackholeUpdate("203.0.113.6/32",
		bgp.MakeCommunity(0, rsASN),
		bgp.MakeCommunity(rsASN, 200),
		bgp.MakeCommunity(rsASN, 300),
		bgp.MakeCommunity(0, 300))); err != nil {
		t.Fatal(err)
	}
	if m.NotTargeted.Value() != 3 {
		t.Fatalf("not_targeted after allow-list = %d, want 3", m.NotTargeted.Value())
	}
	if m.ImportAccepted.Value() != 2 {
		t.Fatalf("accepted = %d, want 2", m.ImportAccepted.Value())
	}
	if f := s.DropFraction(300, mustAddr(t, "203.0.113.6")); f != 0 {
		t.Errorf("blocked peer drop fraction = %v", f)
	}
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.6")); f != 1 {
		t.Errorf("allowed peer drop fraction = %v", f)
	}
}

// TestWithdrawBeforeAnnounce pins the no-op semantics of withdrawing a
// route that was never installed: state untouched, the noop counter (and
// only it) incremented, and a later announce/withdraw cycle unaffected.
func TestWithdrawBeforeAnnounce(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
	})
	ts := time.Unix(0, 0)
	if _, err := s.Process(ts, 100, withdrawUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.WithdrawnNoop.Value() != 1 || m.WithdrawnPrefixes.Value() != 0 {
		t.Fatalf("noop=%d withdrawn=%d, want 1/0", m.WithdrawnNoop.Value(), m.WithdrawnPrefixes.Value())
	}
	if s.NumActiveRoutes() != 0 {
		t.Fatalf("active routes = %d", s.NumActiveRoutes())
	}

	// The full cycle still works after the premature withdraw.
	if _, err := s.Process(ts, 100, blackholeUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.5")); f != 1 {
		t.Fatalf("drop fraction after announce = %v", f)
	}
	if _, err := s.Process(ts.Add(time.Minute), 100, withdrawUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	if m.WithdrawnNoop.Value() != 1 || m.WithdrawnPrefixes.Value() != 1 {
		t.Fatalf("noop=%d withdrawn=%d, want 1/1", m.WithdrawnNoop.Value(), m.WithdrawnPrefixes.Value())
	}
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.5")); f != 0 {
		t.Fatalf("drop fraction after withdraw = %v", f)
	}
}

// TestFlowSpecPolicyMatrix crosses the FlowSpec dimensions the way
// TestPolicyPropagationMatrix does for RTBH: target import policy
// (FlowSpec enabled or not) × originator validation (rule destination
// inside or outside the announcer's registered space) × a withdraw
// arriving before the announcement. Each cell pins the install outcome
// AND the flowspec.* counters accounting for it.
func TestFlowSpecPolicyMatrix(t *testing.T) {
	fsRule := func(dst string) *bgp.FlowRule {
		return &bgp.FlowRule{
			Dst: bgp.MustParsePrefix(dst), HasDst: true,
			Protos: []uint8{17}, SrcPorts: []uint16{123},
		}
	}
	discard := func(rs ...*bgp.FlowRule) *bgp.FlowSpecUpdate {
		return &bgp.FlowSpecUpdate{
			Announced: rs,
			ExtComms:  []bgp.ExtCommunity{bgp.TrafficRateDiscard},
		}
	}
	newFSServer := func(t *testing.T, targetFS AcceptClass) *Server {
		t.Helper()
		s := New(rsASN, mustAddr(t, "10.0.0.1"))
		peers := []Peer{
			{ASN: 100, Policy: DefaultPolicy(),
				Space: []bgp.Prefix{bgp.MustParsePrefix("203.0.113.0/24")}},
			{ASN: 200, Policy: Policy{Standard: AcceptFull, FlowSpec: targetFS}},
		}
		for _, p := range peers {
			if err := s.AddPeer(p); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	victim := "203.0.113.5"

	cases := []struct {
		name          string
		targetFS      AcceptClass
		dst           string // announced rule destination
		withdrawFirst bool
		wantErr       bool
		wantInstalled bool // rule matches at peer 200 after the announce
		want          map[string]int64
	}{
		{name: "accept/valid-origin", targetFS: AcceptFull,
			dst: "203.0.113.5/32", wantInstalled: true,
			want: map[string]int64{"updates": 1, "announced_rules": 1, "import.accepted": 1}},
		{name: "reject/valid-origin", targetFS: AcceptNone,
			dst:  "203.0.113.5/32",
			want: map[string]int64{"updates": 1, "announced_rules": 1, "import.rejected": 1}},
		{name: "accept/invalid-origin", targetFS: AcceptFull,
			dst: "198.51.100.0/24", wantErr: true,
			want: map[string]int64{"updates": 1, "rejected_origin": 1}},
		{name: "reject/invalid-origin", targetFS: AcceptNone,
			dst: "198.51.100.0/24", wantErr: true,
			want: map[string]int64{"updates": 1, "rejected_origin": 1}},
		{name: "accept/valid-origin/withdraw-first", targetFS: AcceptFull,
			dst: "203.0.113.5/32", withdrawFirst: true, wantInstalled: true,
			want: map[string]int64{"updates": 2, "announced_rules": 1,
				"import.accepted": 1, "withdrawn_noop": 1}},
		{name: "reject/valid-origin/withdraw-first", targetFS: AcceptNone,
			dst: "203.0.113.5/32", withdrawFirst: true,
			want: map[string]int64{"updates": 2, "announced_rules": 1,
				"import.rejected": 1, "withdrawn_noop": 1}},
		{name: "accept/invalid-origin/withdraw-first", targetFS: AcceptFull,
			dst: "198.51.100.0/24", withdrawFirst: true, wantErr: true,
			want: map[string]int64{"updates": 2, "rejected_origin": 1, "withdrawn_noop": 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := newFSServer(t, tc.targetFS)
			ts := time.Unix(0, 0)
			rule := fsRule(tc.dst)
			if tc.withdrawFirst {
				// Withdrawing a never-announced rule must be a counted no-op
				// that leaves the later cycle untouched.
				err := s.ProcessFlowSpec(ts, 100, &bgp.FlowSpecUpdate{
					Withdrawn: []*bgp.FlowRule{rule},
				})
				if err != nil {
					t.Fatalf("premature withdraw: %v", err)
				}
				if s.NumFlowSpecRules() != 0 {
					t.Fatalf("rules after premature withdraw = %d", s.NumFlowSpecRules())
				}
			}
			err := s.ProcessFlowSpec(ts.Add(time.Minute), 100, discard(rule))
			if (err != nil) != tc.wantErr {
				t.Fatalf("announce err = %v, wantErr %v", err, tc.wantErr)
			}
			installed := s.MatchFlowSpec(200, mustAddr(t, victim), 17, 123, 40000)
			if tc.dst == "198.51.100.0/24" {
				installed = s.MatchFlowSpec(200, mustAddr(t, "198.51.100.9"), 17, 123, 40000)
			}
			if installed != tc.wantInstalled {
				t.Errorf("installed at peer 200 = %v, want %v", installed, tc.wantInstalled)
			}
			// The originator's own edge carries exactly the rules that were
			// accepted into the system, regardless of any target's policy.
			ownHas := s.OwnMatchingFlowRule(100, mustAddr(t, victim), 17, 123, 40000) != nil
			if !tc.wantErr != ownHas {
				t.Errorf("originator edge match = %v, want %v", ownHas, !tc.wantErr)
			}

			m := s.Metrics()
			got := map[string]int64{
				"updates":             m.FlowSpecUpdates.Value(),
				"announced_rules":     m.FlowSpecAnnounced.Value(),
				"withdrawn_rules":     m.FlowSpecWithdrawn.Value(),
				"withdrawn_noop":      m.FlowSpecWithdrawnNoop.Value(),
				"reannouncements":     m.FlowSpecReannouncements.Value(),
				"rejected_no_discard": m.FlowSpecRejectedAction.Value(),
				"rejected_no_dst":     m.FlowSpecRejectedNoDst.Value(),
				"rejected_origin":     m.FlowSpecRejectedOrigin.Value(),
				"import.accepted":     m.FlowSpecImportAccepted.Value(),
				"import.rejected":     m.FlowSpecImportRejected.Value(),
			}
			for name, v := range got {
				if v != tc.want[name] {
					t.Errorf("flowspec.%s = %d, want %d (counters: %v)", name, v, tc.want[name], got)
				}
			}

			// Tear the installed rule down again: the withdraw must land in
			// withdrawn_rules and clear both the import and the originator
			// views.
			if !tc.wantErr {
				err := s.ProcessFlowSpec(ts.Add(2*time.Minute), 100, &bgp.FlowSpecUpdate{
					Withdrawn: []*bgp.FlowRule{rule},
				})
				if err != nil {
					t.Fatalf("withdraw: %v", err)
				}
				if s.NumFlowSpecRules() != 0 {
					t.Errorf("rules after withdraw = %d", s.NumFlowSpecRules())
				}
				if s.MatchFlowSpec(200, mustAddr(t, victim), 17, 123, 40000) {
					t.Error("rule still matches at peer 200 after withdraw")
				}
				if s.OwnMatchingFlowRule(100, mustAddr(t, victim), 17, 123, 40000) != nil {
					t.Error("originator edge still matches after withdraw")
				}
				if m.FlowSpecWithdrawn.Value() != tc.want["withdrawn_rules"]+1 {
					t.Errorf("flowspec.withdrawn_rules = %d after teardown", m.FlowSpecWithdrawn.Value())
				}
			}
		})
	}
}

// TestFlowSpecNonDiscardRejected pins the action validation: a FlowSpec
// announcement without the traffic-rate-0 action is refused and counted,
// installing nothing.
func TestFlowSpecNonDiscardRejected(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: DefaultPolicy(),
		200: {Standard: AcceptFull, FlowSpec: AcceptFull},
	})
	upd := &bgp.FlowSpecUpdate{
		Announced: []*bgp.FlowRule{{
			Dst: bgp.MustParsePrefix("203.0.113.5/32"), HasDst: true,
		}},
	}
	if err := s.ProcessFlowSpec(time.Unix(0, 0), 100, upd); err == nil {
		t.Fatal("flowspec announcement without discard action accepted")
	}
	m := s.Metrics()
	if m.FlowSpecRejectedAction.Value() != 1 || m.FlowSpecAnnounced.Value() != 0 {
		t.Errorf("rejected_no_discard=%d announced=%d, want 1/0",
			m.FlowSpecRejectedAction.Value(), m.FlowSpecAnnounced.Value())
	}
	if s.NumFlowSpecRules() != 0 {
		t.Errorf("rules = %d", s.NumFlowSpecRules())
	}
}

// TestUnknownPeerCounted pins that an update from an unregistered peer is
// refused before any processing and lands in its own counter, not in
// routeserver.updates.
func TestUnknownPeerCounted(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy()})
	if _, err := s.Process(time.Unix(0, 0), 999, blackholeUpdate("203.0.113.5/32")); err == nil {
		t.Fatal("update from unknown peer accepted")
	}
	m := s.Metrics()
	if m.RejectedUnknownPeer.Value() != 1 || m.Updates.Value() != 0 {
		t.Fatalf("rejected_unknown_peer=%d updates=%d, want 1/0",
			m.RejectedUnknownPeer.Value(), m.Updates.Value())
	}
}

// TestRegisterMetricsSnapshot checks the registry view end to end: the
// counters land under their documented names and the live RIB gauges
// track announce/withdraw, including the per-peer Adj-RIB-In sizes.
func TestRegisterMetricsSnapshot(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: DefaultPolicy(),
	})
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)
	ts := time.Unix(0, 0)
	if _, err := s.Process(ts, 100, blackholeUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counter("routeserver.updates") != 1 ||
		snap.Counter("routeserver.rtbh.announced_prefixes") != 1 ||
		snap.Counter("routeserver.import.accepted") != 1 ||
		snap.Counter("routeserver.import.rejected_host") != 1 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	if snap.Gauge("routeserver.peers") != 3 || snap.Gauge("routeserver.rib_routes") != 1 {
		t.Fatalf("snapshot gauges = %v", snap.Gauges)
	}
	if snap.Gauge("routeserver.peer.AS200.rib_size") != 1 ||
		snap.Gauge("routeserver.peer.AS300.rib_size") != 0 {
		t.Fatalf("per-peer rib gauges = %v", snap.Gauges)
	}

	if _, err := s.Process(ts.Add(time.Minute), 100, withdrawUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if snap.Gauge("routeserver.rib_routes") != 0 || snap.Gauge("routeserver.peer.AS200.rib_size") != 0 {
		t.Fatalf("gauges after withdraw = %v", snap.Gauges)
	}
}
