package routeserver

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/obs"
)

// BlackholeNextHop is the well-known next-hop address whose layer-2
// resolution on the switching fabric is the non-forwarding blackhole MAC.
// 192.0.2.66 follows the RFC 7999 documentation convention.
var BlackholeNextHop = func() uint32 {
	a, err := bgp.ParseAddr("192.0.2.66")
	if err != nil {
		panic(err)
	}
	return a
}()

// Peer is one route-server client (an IXP member AS).
type Peer struct {
	// ASN identifies the member. The simulator assigns 16-bit ASNs so
	// that the community-based targeting scheme can address every peer.
	ASN uint32
	// IP is the peering-LAN address of the member's router.
	IP uint32
	// Policy is the member's import policy for route-server routes.
	Policy Policy
	// Space is the member's registered originated address space (the
	// IRR-style registry the route server validates FlowSpec destinations
	// against, RFC 8955 §6). Nil or empty skips validation for this peer.
	Space []bgp.Prefix
}

// routeKey identifies a route in the server's RIB: the same prefix may be
// blackholed by several members simultaneously.
type routeKey struct {
	origin uint32
	prefix bgp.Prefix
}

// route is an installed blackhole route.
type route struct {
	key      routeKey
	attrs    bgp.PathAttrs
	targets  map[uint32]bool // peers the route was announced to
	accepted map[uint32]bool // targets whose policy installed it
	since    time.Time
}

// peerState tracks one member's view: which blackhole prefixes its routers
// have installed, with reference counts (several origins may blackhole the
// same prefix) and per-length counters for longest-prefix matching.
type peerState struct {
	peer     Peer
	rib      map[bgp.Prefix]int // accepted blackhole prefixes -> refcount
	lenCount [33]int            // how many entries exist per prefix length
}

// Announcement summarizes the outcome of processing one NLRI: to whom the
// route was distributed and who accepted it. The simulator uses it for
// ground truth; the fabric queries live state instead.
type Announcement struct {
	Prefix   bgp.Prefix
	Origin   uint32
	Targets  []uint32
	Accepted []uint32
}

// Collector receives every BGP message the route server exchanges with a
// member, timestamped — the MRT archiving hook.
type Collector func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte)

// Metrics are the route server's observability counters, maintained
// unconditionally (an atomic increment per outcome) and exposed through a
// registry by RegisterMetrics. Import outcomes are counted per target
// peer: one announced prefix distributed to k peers contributes k
// accept/reject outcomes, which is what the paper's propagation matrix
// (§4.1/§4.2) measures.
type Metrics struct {
	// Updates counts UPDATE messages processed; RejectedUnknownPeer and
	// RejectedNoBlackhole count updates refused before any RIB change.
	Updates             obs.Counter
	RejectedUnknownPeer obs.Counter
	RejectedNoBlackhole obs.Counter

	// AnnouncedPrefixes and WithdrawnPrefixes count RTBH prefix-level
	// operations; WithdrawnNoop counts withdrawals of routes that were
	// never installed, Reannouncements counts implicit withdraws.
	AnnouncedPrefixes obs.Counter
	WithdrawnPrefixes obs.Counter
	WithdrawnNoop     obs.Counter
	Reannouncements   obs.Counter

	// Per-target import outcomes, split by the policy length class that
	// decided a rejection (<= /24, /25../31, /32).
	ImportAccepted         obs.Counter
	ImportRejectedStandard obs.Counter
	ImportRejectedMid      obs.Counter
	ImportRejectedHost     obs.Counter
	// NotTargeted counts peers excluded by community steering.
	NotTargeted obs.Counter

	// PeerDowns counts session teardowns handled by PeerDown; the routes
	// flushed by teardowns are counted in WithdrawnPrefixes.
	PeerDowns obs.Counter

	// FlowSpec counters, registered under the "flowspec." prefix.
	// FlowSpecUpdates counts FlowSpec UPDATEs processed (whether they
	// arrived via ProcessFlowSpec or piggybacked through Process);
	// announced/withdrawn/reannouncement counters are per rule, and the
	// import outcomes are per target peer, mirroring the RTBH matrix.
	FlowSpecUpdates         obs.Counter
	FlowSpecAnnounced       obs.Counter
	FlowSpecWithdrawn       obs.Counter
	FlowSpecWithdrawnNoop   obs.Counter
	FlowSpecReannouncements obs.Counter
	FlowSpecRejectedAction  obs.Counter // announcement without traffic-rate-0
	FlowSpecRejectedNoDst   obs.Counter // rule without a destination prefix
	FlowSpecRejectedOrigin  obs.Counter // destination outside registered space
	FlowSpecImportAccepted  obs.Counter
	FlowSpecImportRejected  obs.Counter // target policy has FlowSpec disabled
}

// Server is the route server. It is not safe for concurrent use; the
// simulator drives it from a single event loop, as a production route
// server's BGP best-path process is also single-threaded per table.
type Server struct {
	// ASN is the route server's AS number (16-bit for community targeting).
	ASN uint16
	// IP is the route server's peering-LAN address.
	IP uint32

	peers     map[uint32]*peerState
	peerOrder []uint32 // sorted, for deterministic iteration
	rib       map[routeKey]*route
	flowspec  *fsState
	collector Collector
	metrics   Metrics

	// stats
	msgsProcessed int
}

// New creates a route server operating as AS asn.
func New(asn uint16, ip uint32) *Server {
	return &Server{
		ASN:   asn,
		IP:    ip,
		peers: make(map[uint32]*peerState),
		rib:   make(map[routeKey]*route),
	}
}

// Metrics returns the server's observability counters.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// RegisterMetrics exposes the server's counters and live RIB gauges under
// the "routeserver." prefix. The per-peer Adj-RIB-In size gauges
// (routeserver.peer.AS<n>.rib_size) cover the peers registered at call
// time, so register after AddPeer. Gauge callbacks read live server state
// and follow the obs snapshot convention: snapshot from the goroutine
// driving the (single-threaded) server, or after it finished.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	m := &s.metrics
	reg.RegisterCounter("routeserver.updates", &m.Updates)
	reg.RegisterCounter("routeserver.updates.rejected_unknown_peer", &m.RejectedUnknownPeer)
	reg.RegisterCounter("routeserver.updates.rejected_no_blackhole_community", &m.RejectedNoBlackhole)
	reg.RegisterCounter("routeserver.rtbh.announced_prefixes", &m.AnnouncedPrefixes)
	reg.RegisterCounter("routeserver.rtbh.withdrawn_prefixes", &m.WithdrawnPrefixes)
	reg.RegisterCounter("routeserver.rtbh.withdrawn_noop", &m.WithdrawnNoop)
	reg.RegisterCounter("routeserver.rtbh.reannouncements", &m.Reannouncements)
	reg.RegisterCounter("routeserver.import.accepted", &m.ImportAccepted)
	reg.RegisterCounter("routeserver.import.rejected_standard", &m.ImportRejectedStandard)
	reg.RegisterCounter("routeserver.import.rejected_mid", &m.ImportRejectedMid)
	reg.RegisterCounter("routeserver.import.rejected_host", &m.ImportRejectedHost)
	reg.RegisterCounter("routeserver.import.not_targeted", &m.NotTargeted)
	reg.RegisterCounter("routeserver.sessions.peer_down", &m.PeerDowns)
	reg.RegisterCounter("flowspec.updates", &m.FlowSpecUpdates)
	reg.RegisterCounter("flowspec.announced_rules", &m.FlowSpecAnnounced)
	reg.RegisterCounter("flowspec.withdrawn_rules", &m.FlowSpecWithdrawn)
	reg.RegisterCounter("flowspec.withdrawn_noop", &m.FlowSpecWithdrawnNoop)
	reg.RegisterCounter("flowspec.reannouncements", &m.FlowSpecReannouncements)
	reg.RegisterCounter("flowspec.rejected_no_discard", &m.FlowSpecRejectedAction)
	reg.RegisterCounter("flowspec.rejected_no_dst", &m.FlowSpecRejectedNoDst)
	reg.RegisterCounter("flowspec.rejected_origin", &m.FlowSpecRejectedOrigin)
	reg.RegisterCounter("flowspec.import.accepted", &m.FlowSpecImportAccepted)
	reg.RegisterCounter("flowspec.import.rejected", &m.FlowSpecImportRejected)
	reg.GaugeFunc("flowspec.rules", func() int64 { return int64(s.NumFlowSpecRules()) })
	reg.GaugeFunc("routeserver.peers", func() int64 { return int64(len(s.peers)) })
	reg.GaugeFunc("routeserver.rib_routes", func() int64 { return int64(len(s.rib)) })
	for _, asn := range s.peerOrder {
		ps := s.peers[asn]
		reg.GaugeFunc(fmt.Sprintf("routeserver.peer.AS%d.rib_size", asn),
			func() int64 { return int64(len(ps.rib)) })
	}
}

// SetCollector installs the archive hook (may be nil to disable).
func (s *Server) SetCollector(c Collector) { s.collector = c }

// AddPeer registers a member session. Adding an existing ASN is an error:
// the route server has exactly one session per member.
func (s *Server) AddPeer(p Peer) error {
	if p.ASN == 0 || p.ASN > 0xffff {
		return fmt.Errorf("routeserver: peer ASN %d outside the 16-bit range used for targeting", p.ASN)
	}
	if _, dup := s.peers[p.ASN]; dup {
		return fmt.Errorf("routeserver: duplicate peer AS%d", p.ASN)
	}
	s.peers[p.ASN] = &peerState{peer: p, rib: make(map[bgp.Prefix]int)}
	s.peerOrder = append(s.peerOrder, p.ASN)
	sort.Slice(s.peerOrder, func(i, j int) bool { return s.peerOrder[i] < s.peerOrder[j] })
	return nil
}

// Peers returns the member ASNs in ascending order.
func (s *Server) Peers() []uint32 {
	return append([]uint32(nil), s.peerOrder...)
}

// NumPeers returns the number of registered members.
func (s *Server) NumPeers() int { return len(s.peers) }

// Process handles one UPDATE received from peerAS at time ts: withdrawals
// first (RFC 4271 ordering), then announcements. Announced prefixes must
// carry the BLACKHOLE community — this route server instance implements
// the blackholing service, and non-blackhole routes are outside the scope
// of the study, so they are rejected with an error.
func (s *Server) Process(ts time.Time, peerAS uint32, upd *bgp.Update) ([]Announcement, error) {
	ps, ok := s.peers[peerAS]
	if !ok {
		s.metrics.RejectedUnknownPeer.Inc()
		return nil, fmt.Errorf("routeserver: update from unknown peer AS%d", peerAS)
	}
	s.msgsProcessed++
	s.metrics.Updates.Inc()

	if s.collector != nil {
		raw, err := bgp.EncodeUpdate(upd)
		if err != nil {
			return nil, fmt.Errorf("routeserver: archiving update from AS%d: %w", peerAS, err)
		}
		s.collector(ts, peerAS, ps.peer.IP, raw)
	}

	// A FlowSpec payload travels as opaque MP attributes in an UPDATE with
	// no IPv4 NLRI; the same session and archive path carries both route
	// kinds, so dispatch here (the message was already archived above).
	if fsu, isFS, err := bgp.FlowSpecFromUpdate(upd); err != nil {
		return nil, fmt.Errorf("routeserver: malformed flowspec from AS%d: %w", peerAS, err)
	} else if isFS {
		return nil, s.processFlowSpec(peerAS, fsu)
	}

	for _, p := range upd.Withdrawn {
		s.withdraw(peerAS, p)
	}

	var anns []Announcement
	if len(upd.NLRI) > 0 {
		if !upd.Attrs.Communities.HasBlackhole() {
			s.metrics.RejectedNoBlackhole.Inc()
			return nil, fmt.Errorf("routeserver: AS%d announced %v without BLACKHOLE community", peerAS, upd.NLRI[0])
		}
		targets := targetPeers(s.ASN, upd.Attrs.Communities, s.peerOrder, peerAS)
		for _, p := range upd.NLRI {
			anns = append(anns, s.announce(ts, peerAS, p, upd.Attrs, targets))
		}
	}
	return anns, nil
}

func (s *Server) announce(ts time.Time, origin uint32, prefix bgp.Prefix, attrs bgp.PathAttrs, targets map[uint32]bool) Announcement {
	key := routeKey{origin: origin, prefix: prefix}
	s.metrics.AnnouncedPrefixes.Inc()
	if old, exists := s.rib[key]; exists {
		// Implicit withdraw: replace, releasing old acceptances.
		s.metrics.Reannouncements.Inc()
		s.releaseAccepted(old)
	}

	rt := &route{
		key:      key,
		attrs:    attrs.Clone(),
		targets:  make(map[uint32]bool, len(targets)),
		accepted: make(map[uint32]bool),
		since:    ts,
	}
	// The route server rewrites the next hop to the blackhole.
	rt.attrs.NextHop = BlackholeNextHop

	ann := Announcement{Prefix: prefix, Origin: origin}
	for _, target := range s.peerOrder {
		if !targets[target] {
			if target != origin {
				s.metrics.NotTargeted.Inc()
			}
			continue
		}
		rt.targets[target] = true
		ann.Targets = append(ann.Targets, target)
		tps := s.peers[target]
		if tps.peer.Policy.Accepts(prefix.Len) {
			s.metrics.ImportAccepted.Inc()
			rt.accepted[target] = true
			ann.Accepted = append(ann.Accepted, target)
			if tps.rib[prefix] == 0 {
				tps.lenCount[prefix.Len]++
			}
			tps.rib[prefix]++
		} else {
			switch {
			case prefix.Len <= 24:
				s.metrics.ImportRejectedStandard.Inc()
			case prefix.Len < 32:
				s.metrics.ImportRejectedMid.Inc()
			default:
				s.metrics.ImportRejectedHost.Inc()
			}
		}
	}
	s.rib[key] = rt
	return ann
}

// PeerDown handles a member session teardown (connection loss, hold
// timer expiry, or graceful Cease): per RFC 4271 §6.7 all routes learned
// from the peer are withdrawn, flushing them from every other member's
// Adj-RIB-Out exactly as explicit withdrawals would. The flushed routes
// count toward the WithdrawnPrefixes metric; the session stays
// registered, so a reconnecting peer re-announces into a clean table.
// It returns the number of routes flushed.
func (s *Server) PeerDown(peerAS uint32) int {
	if _, ok := s.peers[peerAS]; !ok {
		return 0
	}
	s.metrics.PeerDowns.Inc()
	var prefixes []bgp.Prefix
	for key := range s.rib {
		if key.origin == peerAS {
			prefixes = append(prefixes, key.prefix)
		}
	}
	// Deterministic flush order, matching ActiveRoutes ordering.
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].Addr != prefixes[j].Addr {
			return prefixes[i].Addr < prefixes[j].Addr
		}
		return prefixes[i].Len < prefixes[j].Len
	})
	for _, p := range prefixes {
		s.withdraw(peerAS, p)
	}
	// The teardown also flushes the peer's FlowSpec rules (counted in
	// FlowSpecWithdrawn), same as its RTBH routes.
	return len(prefixes) + s.flushFlowSpec(peerAS)
}

func (s *Server) withdraw(origin uint32, prefix bgp.Prefix) {
	key := routeKey{origin: origin, prefix: prefix}
	rt, ok := s.rib[key]
	if !ok {
		s.metrics.WithdrawnNoop.Inc()
		return // withdrawing a route we never installed is a no-op
	}
	s.metrics.WithdrawnPrefixes.Inc()
	s.releaseAccepted(rt)
	delete(s.rib, key)
}

func (s *Server) releaseAccepted(rt *route) {
	for target := range rt.accepted {
		tps := s.peers[target]
		if tps == nil {
			continue
		}
		if c := tps.rib[rt.key.prefix]; c > 1 {
			tps.rib[rt.key.prefix] = c - 1
		} else if c == 1 {
			delete(tps.rib, rt.key.prefix)
			tps.lenCount[rt.key.prefix.Len]--
		}
	}
}

// DropFraction returns the fraction of traffic from member peerAS toward
// dstIP that the member's routers send to the blackhole, per its installed
// routes and import policy: the longest matching accepted prefix decides.
func (s *Server) DropFraction(peerAS uint32, dstIP uint32) float64 {
	ps, ok := s.peers[peerAS]
	if !ok {
		return 0
	}
	for length := 32; length >= 0; length-- {
		if ps.lenCount[length] == 0 {
			continue
		}
		p := bgp.MakePrefix(dstIP, uint8(length))
		if ps.rib[p] > 0 {
			return ps.peer.Policy.fraction(uint8(length))
		}
	}
	return 0
}

// VisibleTo reports whether peerAS currently has any announcement for
// prefix in its Adj-RIB-In (regardless of whether its policy accepts it).
func (s *Server) VisibleTo(peerAS uint32, prefix bgp.Prefix) bool {
	for key, rt := range s.rib {
		if key.prefix == prefix && rt.targets[peerAS] {
			return true
		}
	}
	return false
}

// ActiveRoutes returns the currently installed blackhole routes as
// (origin, prefix) pairs in deterministic order.
func (s *Server) ActiveRoutes() []Announcement {
	out := make([]Announcement, 0, len(s.rib))
	for key, rt := range s.rib {
		ann := Announcement{Prefix: key.prefix, Origin: key.origin}
		for _, p := range s.peerOrder {
			if rt.targets[p] {
				ann.Targets = append(ann.Targets, p)
			}
			if rt.accepted[p] {
				ann.Accepted = append(ann.Accepted, p)
			}
		}
		out = append(out, ann)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		if out[i].Prefix.Addr != out[j].Prefix.Addr {
			return out[i].Prefix.Addr < out[j].Prefix.Addr
		}
		return out[i].Prefix.Len < out[j].Prefix.Len
	})
	return out
}

// NumActiveRoutes returns the number of installed blackhole routes.
func (s *Server) NumActiveRoutes() int { return len(s.rib) }

// MessagesProcessed returns the number of UPDATE messages handled.
func (s *Server) MessagesProcessed() int { return s.msgsProcessed }
