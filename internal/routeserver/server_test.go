package routeserver

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/bgp"
	"repro/internal/stats"
)

const rsASN = 65500

func newTestServer(t *testing.T, policies map[uint32]Policy) *Server {
	t.Helper()
	s := New(rsASN, mustAddr(t, "10.0.0.1"))
	for asn, pol := range policies {
		if err := s.AddPeer(Peer{ASN: asn, IP: 0x0a000000 + asn, Policy: pol}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func mustAddr(t *testing.T, s string) uint32 {
	t.Helper()
	a, err := bgp.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func blackholeUpdate(prefix string, extra ...bgp.Community) *bgp.Update {
	cs := bgp.Communities{bgp.Blackhole}
	cs = append(cs, extra...)
	return &bgp.Update{
		Attrs: bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      []uint32{100},
			NextHop:     0x0a000064,
			Communities: cs,
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix(prefix)},
	}
}

func withdrawUpdate(prefix string) *bgp.Update {
	return &bgp.Update{Withdrawn: []bgp.Prefix{bgp.MustParsePrefix(prefix)}}
}

func TestAnnounceDistributesToAllOthers(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: DefaultPolicy(),
	})
	anns, err := s.Process(time.Unix(0, 0), 100, blackholeUpdate("203.0.113.5/32"))
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) != 1 {
		t.Fatalf("got %d announcements", len(anns))
	}
	a := anns[0]
	if len(a.Targets) != 2 {
		t.Fatalf("targets = %v, want peers 200 and 300", a.Targets)
	}
	// Only 200 whitelists /32 blackholes.
	if len(a.Accepted) != 1 || a.Accepted[0] != 200 {
		t.Fatalf("accepted = %v, want [200]", a.Accepted)
	}
}

func TestDropFractionByPolicy(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: DefaultPolicy(),
		400: {Standard: AcceptFull, Host: AcceptPartial, HostFraction: 0.4},
	})
	victim := mustAddr(t, "203.0.113.5")
	if _, err := s.Process(time.Unix(0, 0), 100, blackholeUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	if f := s.DropFraction(200, victim); f != 1 {
		t.Fatalf("accepting peer drop fraction = %v", f)
	}
	if f := s.DropFraction(300, victim); f != 0 {
		t.Fatalf("default-policy peer drop fraction = %v", f)
	}
	if f := s.DropFraction(400, victim); f != 0.4 {
		t.Fatalf("partial peer drop fraction = %v", f)
	}
	// The originator did not receive its own route.
	if f := s.DropFraction(100, victim); f != 0 {
		t.Fatalf("originator drop fraction = %v", f)
	}
	// Unrelated destination unaffected.
	if f := s.DropFraction(200, victim+1); f != 0 {
		t.Fatalf("unrelated destination drop fraction = %v", f)
	}
}

func TestSlash24AcceptedByDefaultPolicy(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: DefaultPolicy(),
		200: DefaultPolicy(),
	})
	if _, err := s.Process(time.Unix(0, 0), 100, blackholeUpdate("203.0.113.0/24")); err != nil {
		t.Fatal(err)
	}
	inside := mustAddr(t, "203.0.113.200")
	if f := s.DropFraction(200, inside); f != 1 {
		t.Fatalf("/24 blackhole not honoured by default policy: %v", f)
	}
}

func TestMidLengthRejectedEvenByBlackholeReady(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
	})
	if _, err := s.Process(time.Unix(0, 0), 100, blackholeUpdate("203.0.113.0/28")); err != nil {
		t.Fatal(err)
	}
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.3")); f != 0 {
		t.Fatalf("/28 accepted despite missing whitelist: %v", f)
	}
}

func TestLongestPrefixWins(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: {Standard: AcceptFull, Host: AcceptPartial, HostFraction: 0.5},
		200: {Standard: AcceptFull, Host: AcceptPartial, HostFraction: 0.5},
	})
	ts := time.Unix(0, 0)
	if _, err := s.Process(ts, 100, blackholeUpdate("203.0.113.0/24")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Process(ts, 100, blackholeUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	// /32 (partial, 0.5) shadows the /24 (full) for the host address.
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.5")); f != 0.5 {
		t.Fatalf("LPM fraction = %v, want 0.5 from /32", f)
	}
	// Other addresses in the /24 still fully dropped.
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.6")); f != 1 {
		t.Fatalf("/24 fraction = %v, want 1", f)
	}
}

func TestWithdrawRemovesRoute(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
	})
	ts := time.Unix(0, 0)
	victim := mustAddr(t, "203.0.113.5")
	s.Process(ts, 100, blackholeUpdate("203.0.113.5/32"))
	if s.NumActiveRoutes() != 1 {
		t.Fatalf("active routes = %d", s.NumActiveRoutes())
	}
	s.Process(ts.Add(time.Minute), 100, withdrawUpdate("203.0.113.5/32"))
	if s.NumActiveRoutes() != 0 {
		t.Fatalf("active routes after withdraw = %d", s.NumActiveRoutes())
	}
	if f := s.DropFraction(200, victim); f != 0 {
		t.Fatalf("drop fraction after withdraw = %v", f)
	}
}

func TestWithdrawUnknownIsNoOp(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy(), 200: DefaultPolicy()})
	if _, err := s.Process(time.Unix(0, 0), 100, withdrawUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleOriginsRefcounted(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: BlackholeReadyPolicy(),
	})
	ts := time.Unix(0, 0)
	victim := mustAddr(t, "203.0.113.5")
	// Both 100 and 200 blackhole the same prefix (victim + upstream).
	s.Process(ts, 100, blackholeUpdate("203.0.113.5/32"))
	s.Process(ts, 200, blackholeUpdate("203.0.113.5/32"))
	if f := s.DropFraction(300, victim); f != 1 {
		t.Fatalf("fraction = %v", f)
	}
	// Withdrawing one origin must keep the other's route effective.
	s.Process(ts, 100, withdrawUpdate("203.0.113.5/32"))
	if f := s.DropFraction(300, victim); f != 1 {
		t.Fatalf("fraction after partial withdraw = %v", f)
	}
	s.Process(ts, 200, withdrawUpdate("203.0.113.5/32"))
	if f := s.DropFraction(300, victim); f != 0 {
		t.Fatalf("fraction after full withdraw = %v", f)
	}
}

func TestReannouncementReplacesRoute(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: BlackholeReadyPolicy(),
	})
	ts := time.Unix(0, 0)
	// First announcement to everyone; re-announcement targeted to 200 only.
	s.Process(ts, 100, blackholeUpdate("203.0.113.5/32"))
	s.Process(ts, 100, blackholeUpdate("203.0.113.5/32",
		bgp.MakeCommunity(0, rsASN), bgp.MakeCommunity(rsASN, 200)))
	victim := mustAddr(t, "203.0.113.5")
	if f := s.DropFraction(200, victim); f != 1 {
		t.Fatalf("targeted peer fraction = %v", f)
	}
	if f := s.DropFraction(300, victim); f != 0 {
		t.Fatalf("untargeted peer fraction = %v (implicit withdraw failed)", f)
	}
	if s.NumActiveRoutes() != 1 {
		t.Fatalf("active routes = %d", s.NumActiveRoutes())
	}
}

func TestTargetedAnnouncementCommunities(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: BlackholeReadyPolicy(),
		400: BlackholeReadyPolicy(),
	})
	ts := time.Unix(0, 0)

	// Exclude a single peer: 0:300.
	anns, err := s.Process(ts, 100, blackholeUpdate("203.0.113.5/32", bgp.MakeCommunity(0, 300)))
	if err != nil {
		t.Fatal(err)
	}
	if got := anns[0].Targets; len(got) != 2 || got[0] != 200 || got[1] != 400 {
		t.Fatalf("exclude targeting = %v, want [200 400]", got)
	}

	// Allow-list mode: 0:rs plus rs:200.
	anns, err = s.Process(ts, 100, blackholeUpdate("203.0.113.6/32",
		bgp.MakeCommunity(0, rsASN), bgp.MakeCommunity(rsASN, 200)))
	if err != nil {
		t.Fatal(err)
	}
	if got := anns[0].Targets; len(got) != 1 || got[0] != 200 {
		t.Fatalf("allow-list targeting = %v, want [200]", got)
	}

	// Allow-list with an explicit block that overrides the allow.
	anns, err = s.Process(ts, 100, blackholeUpdate("203.0.113.7/32",
		bgp.MakeCommunity(rsASN, 200), bgp.MakeCommunity(rsASN, 300), bgp.MakeCommunity(0, 300)))
	if err != nil {
		t.Fatal(err)
	}
	if got := anns[0].Targets; len(got) != 1 || got[0] != 200 {
		t.Fatalf("allow+block targeting = %v, want [200]", got)
	}
}

func TestVisibleTo(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: DefaultPolicy(),
		200: DefaultPolicy(),
		300: DefaultPolicy(),
	})
	p := bgp.MustParsePrefix("203.0.113.5/32")
	s.Process(time.Unix(0, 0), 100, blackholeUpdate("203.0.113.5/32", bgp.MakeCommunity(0, 300)))
	if !s.VisibleTo(200, p) {
		t.Fatal("route invisible to included peer")
	}
	if s.VisibleTo(300, p) {
		t.Fatal("route visible to excluded peer")
	}
	// Visibility is independent of acceptance: 200 rejects /32 but sees it.
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.5")); f != 0 {
		t.Fatalf("default policy accepted /32: %v", f)
	}
}

func TestRejectsNonBlackholeAnnouncement(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy(), 200: DefaultPolicy()})
	upd := blackholeUpdate("203.0.113.0/24")
	upd.Attrs.Communities = bgp.Communities{bgp.NoExport} // no BLACKHOLE
	if _, err := s.Process(time.Unix(0, 0), 100, upd); err == nil {
		t.Fatal("non-blackhole announcement accepted")
	}
}

func TestRejectsUnknownPeer(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy()})
	if _, err := s.Process(time.Unix(0, 0), 999, blackholeUpdate("203.0.113.5/32")); err == nil {
		t.Fatal("update from unknown peer accepted")
	}
}

func TestAddPeerValidation(t *testing.T) {
	s := New(rsASN, 1)
	if err := s.AddPeer(Peer{ASN: 100}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddPeer(Peer{ASN: 100}); err == nil {
		t.Fatal("duplicate peer accepted")
	}
	if err := s.AddPeer(Peer{ASN: 0}); err == nil {
		t.Fatal("ASN 0 accepted")
	}
	if err := s.AddPeer(Peer{ASN: 1 << 20}); err == nil {
		t.Fatal("32-bit ASN accepted")
	}
}

func TestCollectorSeesMessages(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy(), 200: DefaultPolicy()})
	var got []uint32
	s.SetCollector(func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
		if _, _, _, err := bgp.DecodeMessage(msg); err != nil {
			t.Errorf("collector got undecodable message: %v", err)
		}
		got = append(got, peerAS)
	})
	ts := time.Unix(0, 0)
	s.Process(ts, 100, blackholeUpdate("203.0.113.5/32"))
	s.Process(ts, 100, withdrawUpdate("203.0.113.5/32"))
	if len(got) != 2 || got[0] != 100 {
		t.Fatalf("collector calls = %v", got)
	}
	if s.MessagesProcessed() != 2 {
		t.Fatalf("MessagesProcessed = %d", s.MessagesProcessed())
	}
}

func TestNextHopRewrittenToBlackhole(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy(), 200: DefaultPolicy()})
	s.Process(time.Unix(0, 0), 100, blackholeUpdate("203.0.113.0/24"))
	routes := s.ActiveRoutes()
	if len(routes) != 1 {
		t.Fatalf("routes = %v", routes)
	}
	// Check via the internal RIB that the next hop was rewritten.
	for _, rt := range s.rib {
		if rt.attrs.NextHop != BlackholeNextHop {
			t.Fatalf("next hop = %#x, want blackhole %#x", rt.attrs.NextHop, BlackholeNextHop)
		}
	}
}

func TestActiveRoutesDeterministicOrder(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: DefaultPolicy(), 200: DefaultPolicy(), 300: DefaultPolicy(),
	})
	ts := time.Unix(0, 0)
	s.Process(ts, 200, blackholeUpdate("203.0.113.0/24"))
	s.Process(ts, 100, blackholeUpdate("198.51.100.0/24"))
	s.Process(ts, 100, blackholeUpdate("203.0.114.0/24"))
	r := s.ActiveRoutes()
	if len(r) != 3 {
		t.Fatalf("routes = %d", len(r))
	}
	if r[0].Origin != 100 || r[1].Origin != 100 || r[2].Origin != 200 {
		t.Fatalf("order = %v", r)
	}
	if r[0].Prefix.Addr > r[1].Prefix.Addr {
		t.Fatal("prefixes not sorted within origin")
	}
}

func TestPolicyFractionClamping(t *testing.T) {
	p := Policy{Host: AcceptPartial, HostFraction: 1.5}
	if f := p.fraction(32); f != 1 {
		t.Fatalf("fraction clamped high = %v", f)
	}
	p.HostFraction = -0.5
	if f := p.fraction(32); f != 0 {
		t.Fatalf("fraction clamped low = %v", f)
	}
}

func TestAcceptClassString(t *testing.T) {
	if AcceptNone.String() != "none" || AcceptFull.String() != "full" ||
		AcceptPartial.String() != "partial" || AcceptClass(9).String() != "invalid" {
		t.Fatal("AcceptClass.String wrong")
	}
}

func TestRandomSequencesInvariantsProperty(t *testing.T) {
	// Drive the route server with random announce/withdraw sequences and
	// check structural invariants: drop fractions stay in [0,1], and
	// withdrawing everything empties the RIB and every peer view.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := New(rsASN, 1)
		peers := []uint32{100, 200, 300, 400, 500}
		for _, asn := range peers {
			pol := DefaultPolicy()
			switch rng.Intn(3) {
			case 0:
				pol = BlackholeReadyPolicy()
			case 1:
				pol = Policy{Standard: AcceptFull, Host: AcceptPartial, HostFraction: rng.Float64()}
			}
			if err := s.AddPeer(Peer{ASN: asn, Policy: pol}); err != nil {
				return false
			}
		}
		prefixes := []bgp.Prefix{
			bgp.MustParsePrefix("203.0.113.5/32"),
			bgp.MustParsePrefix("203.0.113.6/32"),
			bgp.MustParsePrefix("203.0.113.0/24"),
			bgp.MustParsePrefix("198.51.100.0/28"),
		}
		active := map[[2]uint32]bgp.Prefix{}
		ts := time.Unix(0, 0)
		for step := 0; step < 120; step++ {
			peer := peers[rng.Intn(len(peers))]
			prefix := prefixes[rng.Intn(len(prefixes))]
			if rng.Bool(0.55) {
				upd := &bgp.Update{
					Attrs: bgp.PathAttrs{
						ASPath: []uint32{peer}, NextHop: 1,
						Communities: bgp.Communities{bgp.Blackhole},
					},
					NLRI: []bgp.Prefix{prefix},
				}
				if _, err := s.Process(ts, peer, upd); err != nil {
					return false
				}
				active[[2]uint32{peer, prefix.Addr}] = prefix
			} else {
				if _, err := s.Process(ts, peer, &bgp.Update{Withdrawn: []bgp.Prefix{prefix}}); err != nil {
					return false
				}
				delete(active, [2]uint32{peer, prefix.Addr})
			}
			// Invariant: fractions bounded.
			for _, p := range peers {
				fr := s.DropFraction(p, prefix.Addr)
				if fr < 0 || fr > 1 {
					return false
				}
			}
			if s.NumActiveRoutes() != len(active) {
				return false
			}
		}
		// Withdraw everything: the server must end empty.
		for key, prefix := range active {
			if _, err := s.Process(ts, key[0], &bgp.Update{Withdrawn: []bgp.Prefix{prefix}}); err != nil {
				return false
			}
		}
		if s.NumActiveRoutes() != 0 {
			return false
		}
		for _, p := range peers {
			for _, prefix := range prefixes {
				if s.DropFraction(p, prefix.Addr) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
