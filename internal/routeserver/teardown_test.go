package routeserver

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// snapshotValue extracts one named counter or gauge from a registry
// snapshot, failing the test when the name is unknown.
func snapshotValue(t *testing.T, reg *obs.Registry, name string) int64 {
	t.Helper()
	snap := reg.Snapshot()
	if !snap.Has(name) {
		t.Fatalf("metric %q not in snapshot", name)
	}
	if v, ok := snap.Counters[name]; ok {
		return v
	}
	return snap.Gauge(name)
}

// TestPeerDownFlushesRoutes asserts the RFC 4271 §6.7 teardown semantics:
// a peer session going down withdraws every route the peer originated
// from all other members' Adj-RIB-Outs, observable through the existing
// routeserver.* counters and gauges.
func TestPeerDownFlushesRoutes(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
		300: BlackholeReadyPolicy(),
	})
	reg := obs.NewRegistry()
	s.RegisterMetrics(reg)

	ts := time.Unix(0, 0)
	for _, p := range []string{"203.0.113.5/32", "203.0.113.6/32", "198.51.100.0/24"} {
		if _, err := s.Process(ts, 100, blackholeUpdate(p)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Process(ts, 200, blackholeUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	if got := s.NumActiveRoutes(); got != 4 {
		t.Fatalf("active routes = %d, want 4", got)
	}
	// Peer 300 accepted all four announcements (three distinct prefixes).
	if got := snapshotValue(t, reg, "routeserver.peer.AS300.rib_size"); got != 3 {
		t.Fatalf("AS300 rib size = %d, want 3", got)
	}

	if n := s.PeerDown(100); n != 3 {
		t.Fatalf("PeerDown flushed %d routes, want 3", n)
	}

	// Only AS200's route survives.
	if got := s.NumActiveRoutes(); got != 1 {
		t.Fatalf("active routes after teardown = %d, want 1", got)
	}
	victim := mustAddr(t, "203.0.113.5")
	if f := s.DropFraction(300, victim); f != 1 {
		t.Fatalf("refcounted route lost on teardown: fraction = %v", f)
	}
	if f := s.DropFraction(300, mustAddr(t, "203.0.113.6")); f != 0 {
		t.Fatalf("peer-down did not flush /32: fraction = %v", f)
	}
	if f := s.DropFraction(300, mustAddr(t, "198.51.100.7")); f != 0 {
		t.Fatalf("peer-down did not flush /24: fraction = %v", f)
	}

	// Counters: the three flushed routes count as withdrawals, and the
	// teardown itself is counted once.
	if got := snapshotValue(t, reg, "routeserver.rtbh.withdrawn_prefixes"); got != 3 {
		t.Fatalf("withdrawn_prefixes = %d, want 3", got)
	}
	if got := snapshotValue(t, reg, "routeserver.sessions.peer_down"); got != 1 {
		t.Fatalf("sessions.peer_down = %d, want 1", got)
	}
	if got := snapshotValue(t, reg, "routeserver.peer.AS300.rib_size"); got != 1 {
		t.Fatalf("AS300 rib size after teardown = %d, want 1", got)
	}
	if got := snapshotValue(t, reg, "routeserver.rib_routes"); got != 1 {
		t.Fatalf("rib_routes gauge = %d, want 1", got)
	}
}

// TestPeerDownUnknownOrEmptyPeer covers the degenerate teardowns: an
// unregistered ASN is a no-op, and a peer with no routes only bumps the
// teardown counter.
func TestPeerDownUnknownOrEmptyPeer(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{100: DefaultPolicy(), 200: DefaultPolicy()})
	if n := s.PeerDown(999); n != 0 {
		t.Fatalf("unknown peer flushed %d routes", n)
	}
	if s.Metrics().PeerDowns.Value() != 0 {
		t.Fatal("unknown peer counted as teardown")
	}
	if n := s.PeerDown(100); n != 0 {
		t.Fatalf("empty peer flushed %d routes", n)
	}
	if s.Metrics().PeerDowns.Value() != 1 {
		t.Fatal("teardown of empty peer not counted")
	}
}

// TestPeerDownThenReconnectReannounces verifies a reconnecting peer can
// rebuild its state after a flush: the session stays registered and
// re-announcements install cleanly (no reannouncement counted, since the
// flush removed the old route).
func TestPeerDownThenReconnectReannounces(t *testing.T) {
	s := newTestServer(t, map[uint32]Policy{
		100: BlackholeReadyPolicy(),
		200: BlackholeReadyPolicy(),
	})
	ts := time.Unix(0, 0)
	if _, err := s.Process(ts, 100, blackholeUpdate("203.0.113.5/32")); err != nil {
		t.Fatal(err)
	}
	s.PeerDown(100)
	if _, err := s.Process(ts.Add(time.Minute), 100, blackholeUpdate("203.0.113.5/32")); err != nil {
		t.Fatalf("re-announce after teardown: %v", err)
	}
	if f := s.DropFraction(200, mustAddr(t, "203.0.113.5")); f != 1 {
		t.Fatalf("fraction after reconnect = %v", f)
	}
	if got := s.Metrics().Reannouncements.Value(); got != 0 {
		t.Fatalf("reannouncements = %d, want 0 (table was flushed)", got)
	}
}
