// Package sampling implements the 1:N random packet sampler deployed at
// the IXP's member-facing edge ports. The paper's data plane is built on
// IPFIX samples at rate 1:10,000; every sampled packet becomes one flow
// record.
//
// The simulator works with packet aggregates (batches of identical or
// near-identical packets within a time slot) rather than individual
// packets, so the sampler answers the question "how many of these n
// packets would a 1:N random sampler have picked?" — which is exactly
// Binomial(n, 1/N). This is distribution-identical to per-packet sampling
// and keeps full-period simulations tractable.
package sampling

import (
	"fmt"

	"repro/internal/stats"
)

// Sampler is a 1:N random packet sampler.
type Sampler struct {
	rate int64
	rng  *stats.RNG
}

// New creates a sampler selecting on average one out of rate packets,
// drawing randomness from rng. rate must be >= 1; rate == 1 samples
// everything (useful for tests).
func New(rate int64, rng *stats.RNG) (*Sampler, error) {
	if rate < 1 {
		return nil, fmt.Errorf("sampling: rate %d < 1", rate)
	}
	if rng == nil {
		return nil, fmt.Errorf("sampling: nil RNG")
	}
	return &Sampler{rate: rate, rng: rng}, nil
}

// Rate returns the configured sampling denominator N.
func (s *Sampler) Rate() int64 { return s.rate }

// Sample returns how many of n packets the sampler selects.
func (s *Sampler) Sample(n int64) int64 {
	if n <= 0 {
		return 0
	}
	if s.rate == 1 {
		return n
	}
	return s.rng.Binomial(n, 1/float64(s.rate))
}

// ScaleUp inverts the sampling: the best estimate of the original packet
// count behind sampled samples.
func (s *Sampler) ScaleUp(sampled int64) int64 { return sampled * s.rate }
