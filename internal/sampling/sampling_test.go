package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, stats.NewRNG(1)); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := New(-5, stats.NewRNG(1)); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := New(10, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
	s, err := New(10000, stats.NewRNG(1))
	if err != nil || s.Rate() != 10000 {
		t.Fatalf("New: %v, rate %d", err, s.Rate())
	}
}

func TestRateOnePassesEverything(t *testing.T) {
	s, _ := New(1, stats.NewRNG(2))
	for _, n := range []int64{0, 1, 17, 1000000} {
		if got := s.Sample(n); got != n {
			t.Fatalf("Sample(%d) at rate 1 = %d", n, got)
		}
	}
}

func TestSampleMeanMatchesRate(t *testing.T) {
	s, _ := New(10000, stats.NewRNG(3))
	const n = int64(1000000) // expect ~100 samples per call
	const trials = 2000
	var total int64
	for i := 0; i < trials; i++ {
		total += s.Sample(n)
	}
	mean := float64(total) / trials
	want := float64(n) / 10000
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean samples = %v, want ~%v", mean, want)
	}
}

func TestSampleNeverExceedsInput(t *testing.T) {
	f := func(seed uint64, nRaw int64) bool {
		n := nRaw % (1 << 30)
		if n < 0 {
			n = -n
		}
		s, _ := New(100, stats.NewRNG(seed))
		got := s.Sample(n)
		return got >= 0 && got <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleZeroAndNegative(t *testing.T) {
	s, _ := New(10000, stats.NewRNG(4))
	if s.Sample(0) != 0 || s.Sample(-10) != 0 {
		t.Fatal("non-positive packet counts must sample to zero")
	}
}

func TestSmallFlowsOftenInvisible(t *testing.T) {
	// The paper's central measurement caveat: at 1:10,000 most small
	// flows leave no samples at all. A 100-packet flow is invisible ~99%
	// of the time.
	s, _ := New(10000, stats.NewRNG(5))
	invisible := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if s.Sample(100) == 0 {
			invisible++
		}
	}
	frac := float64(invisible) / trials
	if frac < 0.97 || frac > 1.0 {
		t.Fatalf("invisible fraction for 100-packet flows = %v, want ~0.99", frac)
	}
}

func TestScaleUp(t *testing.T) {
	s, _ := New(10000, stats.NewRNG(6))
	if got := s.ScaleUp(3); got != 30000 {
		t.Fatalf("ScaleUp(3) = %d", got)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a, _ := New(1000, stats.NewRNG(7))
	b, _ := New(1000, stats.NewRNG(7))
	for i := 0; i < 100; i++ {
		if a.Sample(123456) != b.Sample(123456) {
			t.Fatal("same-seeded samplers diverged")
		}
	}
}
