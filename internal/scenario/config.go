// Package scenario constructs and runs the synthetic IXP world whose
// measurements the analysis pipeline consumes: the member ecosystem with
// its mix of blackhole import policies, the address plan and IP-to-AS
// mapping, the host population behind blackholed prefixes, the DDoS attack
// schedule, and the RTBH signaling behaviour of operators (automatic
// on-off mitigation, long-forgotten zombies, squatting protection,
// targeted announcements).
//
// All magnitudes follow the paper's published shape, with absolute traffic
// volumes scaled down (documented in DESIGN.md) so that a full
// measurement-period simulation stays laptop-sized. Every random decision
// derives from Config.Seed, making runs bit-reproducible.
package scenario

import (
	"fmt"
	"time"
)

// Config parameterizes a simulation. The zero value is not valid; start
// from DefaultConfig or TestConfig.
type Config struct {
	// Seed drives all randomness.
	Seed uint64
	// Start is the beginning of the measurement period.
	Start time.Time
	// Days is the measurement duration. The paper covers 104 days
	// (2018-09-26 .. 2019-01-11, with small gaps we do not model).
	Days int

	// Members is the number of ASes connected to the peering platform
	// (paper: ~830 on average).
	Members int
	// RTBHUsers is how many members announce blackholes (paper: 78).
	RTBHUsers int
	// VictimOriginASes is the number of distinct origin ASes blackholed
	// prefixes belong to (paper: 170).
	VictimOriginASes int
	// RemoteOriginASes is the size of the non-member origin-AS universe
	// routed through the IXP; amplifier pools live here (paper: ~65k
	// advertised ASes, 11k of which source amplification traffic).
	RemoteOriginASes int

	// SamplingRate is the 1:N packet sampling denominator (paper: 10000).
	SamplingRate int64
	// ClockOffset is the data-plane clock skew relative to the control
	// plane (paper's MLE estimate: -40ms).
	ClockOffset time.Duration

	// EventsTotal is the number of RTBH events to schedule (paper: ~34k
	// over 104 days). Scaled down proportionally in test configs.
	EventsTotal int
	// UniqueVictims is the number of distinct blackholed host addresses
	// (paper: events reduce to ~17k unique prefixes at delta = infinity).
	UniqueVictims int

	// Traffic scale (sampled-record budget drivers).

	// BaselineDailyPackets is the mean daily per-direction packet count
	// of an active (server or client) host. With 1:10000 sampling, 25000
	// packets/day yields ~2.5 samples/day/direction, enough to meet the
	// paper's >=20-active-day host-analysis criterion.
	BaselineDailyPackets int64
	// AttackPPSMedian is the median attack packet rate. The paper's
	// median attack is ~100k pps; the default here is lower to keep the
	// record volume tractable, preserving all relative shapes.
	AttackPPSMedian float64
	// AttackDurationMedian is the median attack duration.
	AttackDurationMedian time.Duration
	// TrafficScale multiplies every traffic magnitude — attack rates,
	// host baselines, scan volumes, internal traffic — without touching
	// the world's structure (members, events, schedules, addresses).
	// Zero and 1 both mean the documented scaled-down defaults; ~50
	// restores the paper's absolute magnitudes (its median attack is
	// ~100k pps vs the default AttackPPSMedian of 1500, its vantage point
	// saw ≈590M attributed sampled packets over 104 days). The factor is
	// recorded in the dataset metadata so the analysis and detection
	// thresholds calibrated to scale 1 adapt (detect.DefaultThreshold,
	// anomaly.MinMagnitude).
	TrafficScale float64

	// MeanAmplifiersPerAttack controls reflector-pool draws (paper
	// observes 1,086 on average; scaled down by default).
	MeanAmplifiersPerAttack int

	// TargetedEpochStart/Days bound the period during which a heavy RTBH
	// user applies targeted (restricted-audience) announcements,
	// reproducing the early-October excursion in Fig 4. Days <= 0
	// disables the epoch.
	TargetedEpochStartDay int
	TargetedEpochDays     int

	// InternalTrafficShare is the fraction of flow records involving IXP-
	// internal systems (paper: 0.01%), removed during analysis cleaning.
	InternalTrafficShare float64

	// BilateralShare is the fraction of attack events additionally
	// blackholed via private/bilateral agreements outside the route
	// server (paper: ~5% of dropped bytes).
	BilateralShare float64

	// IXPs is the number of exchanges in a federated run. Each IXP gets
	// its own route server, fabric, and member home assignment (member i
	// homes at IXP i mod IXPs); the world itself — members, addresses,
	// attack schedule — is planned once, independent of IXPs, so a
	// federated run partitions exactly the single-IXP run's measurements.
	// Zero or one means a single exchange.
	IXPs int
	// IXPClockSkewStep adds i*step to IXP i's data-plane clock offset,
	// modeling independently drifting measurement clocks per exchange.
	// IXP 0 always keeps the base ClockOffset.
	IXPClockSkewStep time.Duration
	// MitigationPolicy selects how victims mitigate DDoS attacks:
	//
	//   "" or "rtbh"  RTBH only — the paper's observed practice and the
	//                 bit-exact default world.
	//   "flowspec"    victims of amplification attacks announce FlowSpec
	//                 discard rules (dst prefix + UDP + the attack's
	//                 service source ports) instead of RTBH; attacks
	//                 FlowSpec cannot express (SYN floods, random-port
	//                 floods) fall back to RTBH.
	//   "escalate"    victims start with RTBH and escalate to FlowSpec
	//                 mid-mitigation, withdrawing the blackhole — every
	//                 such event exhibits both phases, the shape Table 5's
	//                 per-event comparison needs.
	//   "mixed"       per-event choice among the three.
	//
	// Any non-default policy enables FlowSpec import on all members and
	// changes the planned world (new random draws), so it cannot be
	// compared bit-for-bit against a default run of the same seed.
	MitigationPolicy string

	// MultiHomedShare is the fraction of RTBH-using members connected at
	// two exchanges (home and the next one). A multi-homed member's
	// inbound traffic splits deterministically across both, but its RTBH
	// signaling reaches only its home route server — so the secondary
	// exchange keeps delivering attack traffic the home exchange drops,
	// the cross-IXP blind spot the federated report surfaces. Non-zero
	// values trade exact single-IXP parity for this effect.
	MultiHomedShare float64
}

// DefaultConfig returns the full paper-scale configuration: 104 days,
// 830 members, ~34k RTBH events. A run takes a few minutes and emits a
// few million flow records.
func DefaultConfig() Config {
	return Config{
		Seed:                    1,
		Start:                   time.Date(2018, 9, 26, 0, 0, 0, 0, time.UTC),
		Days:                    104,
		Members:                 830,
		RTBHUsers:               78,
		VictimOriginASes:        170,
		RemoteOriginASes:        20000,
		SamplingRate:            10000,
		ClockOffset:             -40 * time.Millisecond,
		EventsTotal:             34000,
		UniqueVictims:           17000,
		BaselineDailyPackets:    25000,
		AttackPPSMedian:         1500,
		AttackDurationMedian:    35 * time.Minute,
		MeanAmplifiersPerAttack: 300,
		TargetedEpochStartDay:   5,
		TargetedEpochDays:       17,
		InternalTrafficShare:    0.0001,
		BilateralShare:          0.05,
	}
}

// TestConfig returns a miniature world (about 1/40 the default scale)
// suitable for unit and integration tests: seconds to run, a few tens of
// thousands of flow records.
func TestConfig() Config {
	c := DefaultConfig()
	c.Days = 30
	c.Members = 120
	c.RTBHUsers = 20
	c.VictimOriginASes = 30
	c.RemoteOriginASes = 800
	c.EventsTotal = 900
	c.UniqueVictims = 450
	c.MeanAmplifiersPerAttack = 60
	c.TargetedEpochStartDay = 3
	c.TargetedEpochDays = 8
	return c
}

// BenchConfig returns a mid-size world for the benchmark harness: large
// enough for stable statistics, small enough to iterate.
func BenchConfig() Config {
	c := DefaultConfig()
	c.Days = 60
	c.Members = 400
	c.RTBHUsers = 40
	c.VictimOriginASes = 80
	c.RemoteOriginASes = 5000
	c.EventsTotal = 8000
	c.UniqueVictims = 4000
	c.MeanAmplifiersPerAttack = 150
	return c
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Days <= 3:
		return errf("Days must exceed 3 (72h pre-windows need room), got %d", c.Days)
	case c.Members < 10:
		return errf("Members must be >= 10, got %d", c.Members)
	case c.RTBHUsers < 1 || c.RTBHUsers > c.Members:
		return errf("RTBHUsers must be in [1, Members], got %d", c.RTBHUsers)
	case c.VictimOriginASes < 1:
		return errf("VictimOriginASes must be >= 1, got %d", c.VictimOriginASes)
	case c.RemoteOriginASes < 10:
		return errf("RemoteOriginASes must be >= 10, got %d", c.RemoteOriginASes)
	case c.SamplingRate < 1:
		return errf("SamplingRate must be >= 1, got %d", c.SamplingRate)
	case c.EventsTotal < 10:
		return errf("EventsTotal must be >= 10, got %d", c.EventsTotal)
	case c.UniqueVictims < 5 || c.UniqueVictims > c.EventsTotal:
		return errf("UniqueVictims must be in [5, EventsTotal], got %d", c.UniqueVictims)
	case c.BaselineDailyPackets <= 0:
		return errf("BaselineDailyPackets must be positive")
	case c.AttackPPSMedian <= 0:
		return errf("AttackPPSMedian must be positive")
	case c.TrafficScale < 0:
		return errf("TrafficScale must be >= 0 (0 means 1), got %g", c.TrafficScale)
	case c.AttackDurationMedian <= 0:
		return errf("AttackDurationMedian must be positive")
	case c.MeanAmplifiersPerAttack < 1:
		return errf("MeanAmplifiersPerAttack must be >= 1")
	case c.Start.IsZero():
		return errf("Start must be set")
	case c.IXPs < 0:
		return errf("IXPs must be >= 0, got %d", c.IXPs)
	case c.MultiHomedShare < 0 || c.MultiHomedShare > 1:
		return errf("MultiHomedShare must be in [0, 1], got %g", c.MultiHomedShare)
	case c.MultiHomedShare > 0 && c.IXPs < 2:
		return errf("MultiHomedShare requires IXPs >= 2")
	}
	switch c.MitigationPolicy {
	case "", "rtbh", "flowspec", "escalate", "mixed":
	default:
		return errf("MitigationPolicy must be one of rtbh, flowspec, escalate, mixed; got %q", c.MitigationPolicy)
	}
	return nil
}

// MitigationEnabled reports whether the policy plans FlowSpec mitigation
// (anything beyond the default RTBH-only behaviour).
func (c *Config) MitigationEnabled() bool {
	return c.MitigationPolicy != "" && c.MitigationPolicy != "rtbh"
}

// End returns the end of the measurement period.
func (c *Config) End() time.Time { return c.Start.AddDate(0, 0, c.Days) }

// Scale returns the effective traffic-magnitude multiplier: TrafficScale
// with the zero value normalized to 1. Multiplying by exactly 1.0 is an
// identity on floats, so scale-1 worlds stay bit-identical to worlds
// planned before the knob existed.
func (c *Config) Scale() float64 {
	if c.TrafficScale == 0 {
		return 1
	}
	return c.TrafficScale
}

func errf(format string, args ...any) error {
	return fmt.Errorf("scenario: "+format, args...)
}
