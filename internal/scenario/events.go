package scenario

import (
	"math"
	"sort"
	"strconv"
	"time"

	"repro/internal/bgp"
	"repro/internal/ip2as"
	"repro/internal/netgen"
	"repro/internal/peeringdb"
	"repro/internal/stats"
)

// Event-mix fractions of the total event budget (ground truth targets for
// Table 2 / Fig 19): 33% attack-triggered (27 pts with fast reaction, 6
// pts with slow reaction), 21% steady-traffic events, 33% quiet events,
// 13% zombies; squatting prefixes are an absolute handful.
const (
	fracDDoS   = 0.33
	fracSteady = 0.21
	fracZombie = 0.13

	// Of DDoS events: fraction with reaction latency <= 10 minutes.
	fracFastReaction = 27.0 / 33.0
	// Of DDoS events: fraction where the attack ends before the first
	// announcement (short bursts; no traffic during the RTBH).
	fracAttackEndsBeforeRTBH = 1.0 / 3.0
)

func planEvents(w *World, r *stats.RNG) {
	total := w.Cfg.EventsTotal
	nDDoS := int(float64(total) * fracDDoS)
	nSteady := int(float64(total) * fracSteady)
	nZombie := int(float64(total) * fracZombie)

	// Squatting protection: a handful of ASes and prefixes, scaled from
	// the paper's 4 ASes / 21 prefixes.
	w.SquatASes = max(2, 4*total/34000)
	w.SquatPrefix = max(6, 21*total/34000)
	nQuiet := total - nDDoS - nSteady - nZombie - w.SquatPrefix
	if nQuiet < 0 {
		nQuiet = 0
	}

	// Victim pools by kind.
	var busy, quiet, gaming []int
	for i, h := range w.Hosts {
		switch h.Kind {
		case HostQuiet:
			quiet = append(quiet, i)
		case HostGamingClient:
			gaming = append(gaming, i)
			busy = append(busy, i)
		default:
			busy = append(busy, i)
		}
	}

	// First give every host at least one event so the unique-victim count
	// matches the plan; then spend the rest of the budget with repeat
	// victims (gaming clients attract repeat attacks).
	type quota struct{ ddos, steady, quiet, zombie int }
	q := quota{ddos: nDDoS, steady: nSteady, quiet: nQuiet, zombie: nZombie}

	schedule := func(class EventClass, hostIdx int) {
		w.Events = append(w.Events, buildEvent(w, r, class, hostIdx))
	}

	for i, h := range w.Hosts {
		switch {
		case h.Kind == HostQuiet && q.zombie > 0 && r.Bool(float64(q.zombie)/float64(q.zombie+q.quiet+1)):
			schedule(ClassZombie, i)
			q.zombie--
		case h.Kind == HostQuiet && q.quiet > 0:
			schedule(ClassQuiet, i)
			q.quiet--
		case h.Kind == HostQuiet && q.ddos > 0:
			schedule(ClassDDoS, i)
			q.ddos--
		case h.Kind != HostQuiet && q.ddos > 0 && r.Bool(0.6):
			schedule(ClassDDoS, i)
			q.ddos--
		case h.Kind != HostQuiet && q.steady > 0:
			schedule(ClassSteady, i)
			q.steady--
		case q.ddos > 0:
			schedule(ClassDDoS, i)
			q.ddos--
		case q.quiet > 0 && h.Kind == HostQuiet:
			schedule(ClassQuiet, i)
			q.quiet--
		case q.steady > 0:
			schedule(ClassSteady, i)
			q.steady--
		default:
			schedule(ClassQuiet, i)
			if q.quiet > 0 {
				q.quiet--
			}
		}
	}

	pick := func(pool []int) int { return pool[r.Intn(len(pool))] }
	for q.ddos > 0 {
		// Repeat DDoS victims: mostly gaming clients, then other busy
		// hosts, occasionally quiet ones.
		var hostIdx int
		switch {
		case len(gaming) > 0 && r.Bool(0.55):
			hostIdx = pick(gaming)
		case len(busy) > 0 && r.Bool(0.7):
			hostIdx = pick(busy)
		case len(quiet) > 0:
			hostIdx = pick(quiet)
		default:
			hostIdx = r.Intn(len(w.Hosts))
		}
		schedule(ClassDDoS, hostIdx)
		q.ddos--
	}
	for q.steady > 0 && len(busy) > 0 {
		schedule(ClassSteady, pick(busy))
		q.steady--
	}
	for q.quiet > 0 && len(quiet) > 0 {
		schedule(ClassQuiet, pick(quiet))
		q.quiet--
	}
	for q.zombie > 0 && len(quiet) > 0 {
		schedule(ClassZombie, pick(quiet))
		q.zombie--
	}

	planSquatting(w, r)
	resolveEventOverlaps(w)
	assignTargeting(w, r)
	for i, e := range w.Events {
		e.ID = i
	}
}

// buildEvent constructs one event of the given class for the host.
func buildEvent(w *World, r *stats.RNG, class EventClass, hostIdx int) *Event {
	h := w.Hosts[hostIdx]
	vas := w.VictimASes[h.VictimAS]
	e := &Event{
		Class:    class,
		Prefix:   bgp.HostPrefix(h.IP),
		Peer:     vas.Peer,
		OriginAS: vas.ASN,
		Host:     hostIdx,
	}
	period := w.Cfg.End().Sub(w.Cfg.Start)

	switch class {
	case ClassDDoS:
		// Rarely the operator blankets the whole /24.
		if r.Bool(0.01) {
			e.Prefix = bgp.MakePrefix(h.IP, 24)
		}
		e.Attack = buildAttack(w, r)
		e.Bilateral = r.Bool(w.Cfg.BilateralShare)

		var latency time.Duration
		if r.Bool(fracFastReaction) {
			latency = time.Duration(logNormalMedian(r, 3, 0.6, 0.5, 9.8) * float64(time.Minute))
		} else {
			latency = time.Duration((10 + 45*r.Float64()) * float64(time.Minute))
		}
		// Attack start: diurnally skewed into the active hours, leaving
		// room for the mitigation tail before the period end.
		startOff := time.Duration(r.Float64() * float64(period-14*time.Hour))
		e.Attack.Start = w.Cfg.Start.Add(startOff)
		if r.Bool(fracAttackEndsBeforeRTBH) {
			e.Attack.Duration = time.Duration(float64(latency) * (0.5 + 0.45*r.Float64()))
		}
		e.Episodes = onOffEpisodes(r, e.Attack.Start.Add(latency), e.Attack.End(), w.Cfg.End())

	case ClassSteady:
		switch {
		case r.Bool(0.02):
			e.Prefix = bgp.MakePrefix(h.IP, uint8(25+r.Intn(7))) // /25../31
		case r.Bool(0.04):
			e.Prefix = bgp.MakePrefix(h.IP, 24)
		}
		start := w.Cfg.Start.Add(time.Duration(r.Float64() * float64(period-6*time.Hour)))
		e.Episodes = fewCycleEpisodes(r, start, w.Cfg.End(),
			time.Duration(logNormalMedian(r, 4, 1.2, 0.3, 96)*float64(time.Hour)), 1+r.Intn(4))

	case ClassQuiet:
		switch {
		case r.Bool(0.02):
			e.Prefix = bgp.MakePrefix(h.IP, uint8(25+r.Intn(7)))
		case r.Bool(0.02):
			e.Prefix = bgp.MakePrefix(h.IP, uint8(22+r.Intn(3))) // /22../24
		}
		start := w.Cfg.Start.Add(time.Duration(r.Float64() * float64(period-6*time.Hour)))
		e.Episodes = fewCycleEpisodes(r, start, w.Cfg.End(),
			time.Duration(logNormalMedian(r, 2, 1.5, 0.2, 72)*float64(time.Hour)), 1+r.Intn(2))

	case ClassZombie:
		start := w.Cfg.Start.Add(time.Duration(r.Float64() * float64(period) * 0.75))
		ep := Episode{Announce: start}
		// Most forgotten blackholes are eventually noticed and cleaned up
		// after weeks; a quarter survive to the end of the period. The
		// mix calibrates the average parallel-RTBH count (Fig 3).
		if r.Bool(0.85) {
			wd := start.Add(time.Duration((1 + 3*r.Float64()) * float64(7*24*time.Hour)))
			if wd.Before(w.Cfg.End()) {
				ep.Withdraw = wd
			}
		}
		e.Episodes = []Episode{ep}
	}
	return e
}

// onOffEpisodes generates the paper's Fig 9 pattern: announce after the
// attack is detected, then withdraw-probe-reannounce cycles while the
// attack lasts, with gaps short enough (< 10 min) that the analysis merges
// them into one event.
func onOffEpisodes(r *stats.RNG, firstAnnounce, attackEnd, periodEnd time.Time) []Episode {
	overrun := time.Duration((10 + 50*r.Float64()) * float64(time.Minute))
	mitigationEnd := attackEnd.Add(overrun)
	if mitigationEnd.Before(firstAnnounce.Add(10 * time.Minute)) {
		mitigationEnd = firstAnnounce.Add(10*time.Minute + time.Duration(r.Float64()*float64(2*time.Hour)))
	}
	var eps []Episode
	t := firstAnnounce
	for len(eps) < 60 {
		if len(eps) > 0 && !t.Before(mitigationEnd) {
			return eps
		}
		hold := time.Duration((1.5 + 3*r.Float64()) * float64(time.Minute))
		wd := t.Add(hold)
		if wd.After(mitigationEnd) {
			wd = mitigationEnd
		}
		if !wd.Before(periodEnd) {
			eps = append(eps, Episode{Announce: t})
			return eps
		}
		eps = append(eps, Episode{Announce: t, Withdraw: wd})
		if !wd.Before(mitigationEnd) {
			return eps
		}
		gap := time.Duration(logNormalMedian(r, 75, 0.8, 20, 570) * float64(time.Second))
		t = wd.Add(gap)
		if !t.Before(periodEnd) {
			return eps
		}
	}
	return eps
}

// fewCycleEpisodes generates a small number of long announce/withdraw
// cycles with short gaps.
func fewCycleEpisodes(r *stats.RNG, start, periodEnd time.Time, hold time.Duration, cycles int) []Episode {
	var eps []Episode
	t := start
	for i := 0; i < cycles; i++ {
		wd := t.Add(time.Duration(float64(hold) * (0.5 + r.Float64())))
		if !wd.Before(periodEnd) {
			eps = append(eps, Episode{Announce: t})
			return eps
		}
		eps = append(eps, Episode{Announce: t, Withdraw: wd})
		gap := time.Duration(logNormalMedian(r, 120, 0.8, 25, 560) * float64(time.Second))
		t = wd.Add(gap)
		if !t.Before(periodEnd) {
			break
		}
	}
	return eps
}

// buildAttack draws the attack parameters: magnitude, duration, vector
// composition (Table 3 protocol-count distribution), and the reflector
// origin-AS participation that yields Fig 15's skew.
func buildAttack(w *World, r *stats.RNG) *Attack {
	s := w.Cfg.Scale()
	a := &Attack{
		PPS:      logNormalMedian(r, w.Cfg.AttackPPSMedian*s, 1.2, 200*s, w.Cfg.AttackPPSMedian*s*150),
		Duration: time.Duration(logNormalMedian(r, w.Cfg.AttackDurationMedian.Minutes(), 1.1, 4, 720) * float64(time.Minute)),
	}
	nProto := r.WeightedChoice(protocolCountDist)
	if nProto == 0 {
		if r.Bool(0.25) {
			a.SYNFlood = true
		} else {
			a.ExtraRandomPort = true
		}
	} else {
		a.Protocols = netgen.PickAmpProtocols(r, nProto)
		a.ExtraRandomPort = r.Bool(0.042)
	}

	// Reflector origin ASes: the popular head participates with fixed
	// per-rank probabilities. The tail clusters behind a handful of
	// transit members per attack — reflector populations are not spread
	// uniformly across the Internet, which is what keeps any single big
	// transit out of most attacks (Fig 15's handover CDF) while still
	// letting the tail span thousands of origin ASes across all attacks.
	if len(a.Protocols) > 0 {
		for rank, p := range popularReflectorParticipation {
			if rank < len(w.RemoteASes) && r.Bool(p) {
				a.OriginASes = append(a.OriginASes, rank)
			}
		}
		tailMean := max(12, w.Cfg.RemoteOriginASes*70/20000)
		cluster := attackCluster(w, r)
		nTail := int(r.Poisson(float64(tailMean)))
		for i := 0; i < nTail && len(cluster) > 0; i++ {
			cone := cluster[r.Intn(len(cluster))]
			if len(cone) == 0 {
				continue
			}
			a.OriginASes = append(a.OriginASes, cone[r.Intn(len(cone))])
		}
		if len(a.OriginASes) == 0 {
			a.OriginASes = append(a.OriginASes, r.Intn(len(w.RemoteASes)))
		}
	}
	return a
}

// attackCluster draws the transit cones the attack's tail reflectors live
// behind: a few members, weighted by a flattened traffic weight.
func attackCluster(w *World, r *stats.RNG) [][]int {
	weights := make([]float64, len(w.Members))
	for i, m := range w.Members {
		weights[i] = math.Pow(m.TrafficWeight, 0.4)
	}
	cluster := make([][]int, 0, 5)
	for len(cluster) < 5 {
		m := w.Members[r.WeightedChoice(weights)].ASN
		if cone := w.ConeByMember[m]; len(cone) > 0 {
			cluster = append(cluster, cone)
		} else if r.Bool(0.3) {
			break // sparse cones: accept a smaller cluster
		}
	}
	return cluster
}

// planSquatting adds the squatting-protection prefixes. Squatted space is
// by definition unused: the prefixes belong to dedicated victim ASes that
// host nothing, appended to the AS plan here (after hosts were placed).
func planSquatting(w *World, r *stats.RNG) {
	nAS := w.SquatASes
	perAS := (w.SquatPrefix + nAS - 1) / nAS
	count := 0
	for a := 0; a < nAS && count < w.SquatPrefix; a++ {
		vas := len(w.VictimASes)
		w.VictimASes = append(w.VictimASes, VictimAS{
			ASN:     uint32(victimASNBase + vas),
			Peer:    w.Members[r.Intn(w.Cfg.RTBHUsers)].ASN,
			Block:   bgp.MakePrefix(uint32(victimBlockBase+vas<<victimBlockBits), 32-victimBlockBits),
			PDBType: peeringdb.TypeUnknown,
		})
		block := w.VictimASes[vas].Block
		for p := 0; p < perAS && count < w.SquatPrefix; p++ {
			length := uint8(22 + r.Intn(3)) // /22../24
			sub := bgp.MakePrefix(block.Addr+uint32(p)<<(32-length), length)
			start := w.Cfg.Start.Add(time.Duration(r.Float64() * float64(10*24*time.Hour)))
			w.Events = append(w.Events, &Event{
				Class:    ClassSquatting,
				Prefix:   sub,
				Peer:     w.VictimASes[vas].Peer,
				OriginAS: w.VictimASes[vas].ASN,
				Host:     -1,
				Episodes: []Episode{{Announce: start}},
			})
			count++
		}
	}
}

// resolveEventOverlaps separates events on the same prefix by at least six
// hours so that distinct ground-truth events stay distinct under the
// analysis's 10-minute merge threshold.
func resolveEventOverlaps(w *World) {
	byPrefix := make(map[bgp.Prefix][]*Event)
	for _, e := range w.Events {
		byPrefix[e.Prefix] = append(byPrefix[e.Prefix], e)
	}
	const sep = 6 * time.Hour
	for _, evs := range byPrefix {
		if len(evs) < 2 {
			continue
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start().Before(evs[j].Start()) })
		for i := 1; i < len(evs); i++ {
			prevEnd, ok := evs[i-1].End()
			if !ok {
				// Previous event never ends: push this event's start far
				// out; if it falls past the period it simply produces a
				// merged long event, which is harmless but rare.
				prevEnd = w.Cfg.End()
			}
			if evs[i].Start().Before(prevEnd.Add(sep)) {
				shift := prevEnd.Add(sep).Sub(evs[i].Start())
				shiftEvent(evs[i], shift)
			}
		}
	}
	// Drop events pushed (mostly) beyond the period and clamp episodes
	// that a shift moved past the period end.
	kept := w.Events[:0]
	for _, e := range w.Events {
		if !e.Start().Before(w.Cfg.End().Add(-10 * time.Minute)) {
			continue
		}
		eps := e.Episodes[:0]
		for _, ep := range e.Episodes {
			if !ep.Announce.Before(w.Cfg.End()) {
				break
			}
			if !ep.Withdraw.IsZero() && !ep.Withdraw.Before(w.Cfg.End()) {
				ep.Withdraw = time.Time{} // active at period end
			}
			eps = append(eps, ep)
		}
		e.Episodes = eps
		kept = append(kept, e)
	}
	w.Events = kept
	sort.Slice(w.Events, func(i, j int) bool { return w.Events[i].Start().Before(w.Events[j].Start()) })
}

func shiftEvent(e *Event, d time.Duration) {
	for i := range e.Episodes {
		e.Episodes[i].Announce = e.Episodes[i].Announce.Add(d)
		if !e.Episodes[i].Withdraw.IsZero() {
			e.Episodes[i].Withdraw = e.Episodes[i].Withdraw.Add(d)
		}
	}
	if e.Attack != nil {
		e.Attack.Start = e.Attack.Start.Add(d)
	}
}

// assignTargeting marks the events that use targeted (restricted-audience)
// announcements: pervasive for one heavy user during the configured epoch
// (the early-October excursion of Fig 4), near-absent otherwise.
func assignTargeting(w *World, r *stats.RNG) {
	if w.Cfg.TargetedEpochDays <= 0 {
		return
	}
	epochStart := w.Cfg.Start.AddDate(0, 0, w.Cfg.TargetedEpochStartDay)
	epochEnd := epochStart.AddDate(0, 0, w.Cfg.TargetedEpochDays)

	// The designated heavy user: the peer announcing the most events.
	counts := make(map[uint32]int)
	for _, e := range w.Events {
		counts[e.Peer]++
	}
	var heavy uint32
	best := -1
	for peer, c := range counts {
		if c > best || (c == best && peer < heavy) {
			heavy, best = peer, c
		}
	}

	for _, e := range w.Events {
		inEpoch := e.Start().After(epochStart) && e.Start().Before(epochEnd)
		switch {
		// The heavy user restricts the audience of its long-lived
		// protective blackholes; reactive DDoS mitigations go to the
		// full platform (time pressure leaves no room for curation).
		case inEpoch && e.Peer == heavy && e.Class != ClassDDoS:
			e.TargetedExclude = randomPeerSubset(w, r, 0.5)
		case r.Bool(0.002):
			e.TargetedExclude = randomPeerSubset(w, r, 3/float64(len(w.Members)))
		}
	}
}

func randomPeerSubset(w *World, r *stats.RNG, p float64) []uint32 {
	var out []uint32
	for _, m := range w.Members {
		if r.Bool(p) {
			out = append(out, m.ASN)
		}
	}
	return out
}

// buildRegistries constructs the PeeringDB registry and the IP-to-AS
// table from the plan.
func buildRegistries(w *World) {
	pdb := peeringdb.New()
	for _, m := range w.Members {
		if m.PDBType == peeringdb.TypeUnknown {
			continue // absent from PeeringDB
		}
		pdb.Add(peeringdb.Network{ASN: m.ASN, Name: asName("member", m.ASN), Type: m.PDBType, Scp: peeringdb.ScopeEurope})
	}
	for _, v := range w.VictimASes {
		if v.PDBType == peeringdb.TypeUnknown {
			continue
		}
		pdb.Add(peeringdb.Network{ASN: v.ASN, Name: asName("victim", v.ASN), Type: v.PDBType, Scp: peeringdb.ScopeRegional})
	}
	w.PDB = pdb

	tbl := ip2as.New()
	for _, v := range w.VictimASes {
		tbl.Add(v.Block, v.ASN)
	}
	for _, rem := range w.RemoteASes {
		tbl.Add(rem.Block, rem.ASN)
	}
	w.IP2AS = tbl
}

func asName(kind string, asn uint32) string {
	return kind + "-as" + strconv.FormatUint(uint64(asn), 10)
}
