package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/fabric"
	"repro/internal/ipfix"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

// Federation is the deterministic member-to-exchange assignment of a
// multi-IXP run. The world itself is planned once, independent of the
// exchange count; the federation only decides where each member — and
// with it each control message and packet batch — is observed. Member i
// homes at IXP i mod N, so disjoint member subsets per exchange.
type Federation struct {
	W *World
	// N is the number of exchanges (>= 1).
	N int
	// ClockOffsets[i] is IXP i's data-plane clock skew: the base config
	// offset plus i*IXPClockSkewStep. IXP 0 always keeps the base.
	ClockOffsets []time.Duration

	home  map[uint32]int
	multi map[uint32]bool
}

// PlanFederation derives the federation of the planned world from its
// config: home assignments for every member, per-IXP clock offsets, and
// the deterministic multi-homed member selection (seed-derived, so the
// same world always federates identically).
func PlanFederation(w *World) *Federation {
	n := w.Cfg.IXPs
	if n < 1 {
		n = 1
	}
	fed := &Federation{
		W:            w,
		N:            n,
		ClockOffsets: make([]time.Duration, n),
		home:         make(map[uint32]int, len(w.Members)),
		multi:        make(map[uint32]bool),
	}
	for i := range fed.ClockOffsets {
		fed.ClockOffsets[i] = w.Cfg.ClockOffset + time.Duration(i)*w.Cfg.IXPClockSkewStep
	}
	for i, m := range w.Members {
		fed.home[m.ASN] = i % n
	}
	if n > 1 && w.Cfg.MultiHomedShare > 0 {
		// Candidates are the members that anchor traffic: the peers
		// announcing victim prefixes. Selection draws from a dedicated
		// seed fork in sorted ASN order, so it is stable across runs and
		// independent of everything else the seed drives.
		seen := make(map[uint32]bool)
		var peers []uint32
		for _, v := range w.VictimASes {
			if !seen[v.Peer] {
				seen[v.Peer] = true
				peers = append(peers, v.Peer)
			}
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		r := stats.NewRNG(w.Cfg.Seed ^ 0xfed)
		for _, p := range peers {
			if r.Bool(w.Cfg.MultiHomedShare) {
				fed.multi[p] = true
			}
		}
	}
	return fed
}

// Home returns the exchange a member connects to (its only one unless
// multi-homed). Unknown ASNs map to IXP 0.
func (f *Federation) Home(asn uint32) int { return f.home[asn] }

// MultiHomed reports whether the member is additionally connected at
// (Home+1) mod N.
func (f *Federation) MultiHomed(asn uint32) bool { return f.multi[asn] }

// MultiHomedMembers returns the sorted ASNs of all multi-homed members.
func (f *Federation) MultiHomedMembers() []uint32 {
	out := make([]uint32, 0, len(f.multi))
	for asn := range f.multi {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DispatchIXP decides which exchange observes a batch: the owner
// member's home, except that a multi-homed owner's traffic splits
// deterministically between home and secondary by a hash of the flow
// endpoints and the 5-minute slot — coarse enough that a given
// src/dst pair sticks to one exchange within a slot, as real ingress
// selection does.
func (f *Federation) DispatchIXP(b *fabric.Batch) int {
	h := f.home[b.Owner]
	if !f.multi[b.Owner] {
		return h
	}
	x := uint64(b.DstIP)<<32 | uint64(b.SrcIP)
	x ^= uint64(b.Time.Unix()/300) * 0x9e3779b97f4a7c15
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	if x&1 == 1 {
		return (h + 1) % f.N
	}
	return h
}

// FederatedResult summarizes a completed federated run.
type FederatedResult struct {
	World      *World
	Federation *Federation
	// Per-IXP measurements, indexed by exchange.
	FabricStats []fabric.Stats
	ControlMsgs []int
	FlowRecords []int64

	Announcements int
	Withdrawals   int
}

// federatedExecutor routes Drive's total event order across the per-IXP
// executors: control messages to the announcing member's home exchange,
// batches wherever DispatchIXP anchors them.
type federatedExecutor struct {
	fed *Federation
	exs []Executor
}

func (e *federatedExecutor) Control(ts time.Time, peerAS uint32, upd *bgp.Update) error {
	return e.exs[e.fed.Home(peerAS)].Control(ts, peerAS, upd)
}

func (e *federatedExecutor) Inject(b *fabric.Batch) error {
	return e.exs[e.fed.DispatchIXP(b)].Inject(b)
}

// RunFederated executes the planned world across the federation's
// exchanges: one route server and fabric per IXP, fed from the same
// totally ordered action stream Run dispatches, with every fabric
// drawing from one shared sample source. With IXPs == 1 the emitted
// streams are byte-identical to Run's; with more, they partition them
// (exactly, when MultiHomedShare is zero).
//
// sinks must have one entry per exchange.
func RunFederated(w *World, sinks []Sinks) (*FederatedResult, error) {
	fed := PlanFederation(w)
	if len(sinks) != fed.N {
		return nil, fmt.Errorf("scenario: %d sinks for %d IXPs", len(sinks), fed.N)
	}
	for i := range sinks {
		if sinks[i].Flow == nil {
			return nil, fmt.Errorf("scenario: Sinks[%d].Flow is required", i)
		}
	}

	res := &FederatedResult{
		World:       w,
		Federation:  fed,
		FabricStats: make([]fabric.Stats, fed.N),
		ControlMsgs: make([]int, fed.N),
		FlowRecords: make([]int64, fed.N),
	}
	rss := make([]*routeserver.Server, fed.N)
	fbs := make([]*fabric.Fabric, fed.N)

	st, err := Drive(w, func(fabricRNG *stats.RNG) (Executor, error) {
		src, err := fabric.NewSampleSource(w.Cfg.SamplingRate, fabricRNG)
		if err != nil {
			return nil, err
		}
		exs := make([]Executor, fed.N)
		for i := 0; i < fed.N; i++ {
			i := i
			rs, err := NewRouteServer(w)
			if err != nil {
				return nil, err
			}
			if sinks[i].Control != nil {
				rs.SetCollector(sinks[i].Control)
			}
			fb, err := fabric.NewWithSource(rs, src, func(b *ipfix.RecordBatch) error {
				res.FlowRecords[i] += int64(b.Len())
				return sinks[i].Flow(b)
			})
			if err != nil {
				return nil, err
			}
			fb.ClockOffset = fed.ClockOffsets[i]
			if sinks[i].Metrics != nil {
				rs.RegisterMetrics(sinks[i].Metrics)
				fb.RegisterMetrics(sinks[i].Metrics)
			}
			rss[i] = rs
			fbs[i] = fb
			exs[i] = directExecutor{rs: rs, fb: fb}
		}
		return &federatedExecutor{fed: fed, exs: exs}, nil
	})
	if err != nil {
		return nil, err
	}

	for i := 0; i < fed.N; i++ {
		res.FabricStats[i] = fbs[i].Stats()
		res.ControlMsgs[i] = rss[i].MessagesProcessed()
	}
	res.Announcements = st.Announcements
	res.Withdrawals = st.Withdrawals
	return res, nil
}
