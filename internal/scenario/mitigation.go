package scenario

import (
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/netgen"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

// planMitigation applies Config.MitigationPolicy to the planned events:
// amplification-attack victims switch to, or escalate into, FlowSpec
// discard rules. It runs after overlap resolution, so episode times are
// final; the default policy leaves the world untouched (no draws).
func planMitigation(w *World, r *stats.RNG) {
	if !w.Cfg.MitigationEnabled() {
		return
	}
	// FlowSpec is an opt-in route-server feature; a deployment that plans
	// fine-grained mitigation has its members import the rules.
	for i := range w.Members {
		w.Members[i].Policy.FlowSpec = routeserver.AcceptFull
	}
	for _, e := range w.Events {
		if e.Class != ClassDDoS || e.Attack == nil || len(e.Episodes) == 0 {
			continue
		}
		if len(e.Attack.Protocols) == 0 {
			// SYN floods and pure random-port floods have no port
			// signature a FlowSpec rule could discard on; the victim
			// stays with RTBH.
			continue
		}
		choice := w.Cfg.MitigationPolicy
		if choice == "mixed" {
			choice = [...]string{"rtbh", "flowspec", "escalate"}[r.Intn(3)]
		}
		switch choice {
		case "flowspec":
			// Fine-grained from the first reaction: the window replaces
			// the RTBH episodes entirely.
			fs := &FlowSpecWindow{Start: e.Episodes[0].Announce, Rule: flowRuleFor(e)}
			if end, ok := e.End(); ok {
				fs.End = end
			}
			e.Episodes = nil
			e.FlowSpec = fs
		case "escalate":
			escalateEvent(w, e, r)
		}
	}
}

// escalateEvent truncates the event's RTBH episodes at a drawn handover
// instant and plans the FlowSpec window from there to the original
// mitigation end, so the event exhibits both phases back to back.
func escalateEvent(w *World, e *Event, r *stats.RNG) {
	start := e.Episodes[0].Announce
	mitEnd, bounded := e.End()
	if !bounded {
		mitEnd = w.Cfg.End()
	}
	span := mitEnd.Sub(start)
	if span < 4*time.Minute {
		return // nothing worth splitting; stay with RTBH
	}
	esc := start.Add(time.Duration((0.3 + 0.4*r.Float64()) * float64(span)))

	var eps []Episode
	for _, ep := range e.Episodes {
		if !ep.Announce.Before(esc) {
			break
		}
		if ep.Withdraw.IsZero() || ep.Withdraw.After(esc) {
			ep.Withdraw = esc
		}
		eps = append(eps, ep)
	}
	e.Episodes = eps
	fs := &FlowSpecWindow{Start: esc, Rule: flowRuleFor(e)}
	if bounded {
		fs.End = mitEnd
	}
	e.FlowSpec = fs
}

// flowRuleFor builds the victim's discard rule: the event prefix, UDP,
// and the attack's amplification service ports as source ports (the
// reflected traffic carries the service port as its source).
func flowRuleFor(e *Event) *bgp.FlowRule {
	seen := make(map[uint16]bool, len(e.Attack.Protocols))
	ports := make([]uint16, 0, len(e.Attack.Protocols))
	for _, p := range e.Attack.Protocols {
		if !seen[p.Port] {
			seen[p.Port] = true
			ports = append(ports, p.Port)
		}
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] < ports[j] })
	return &bgp.FlowRule{
		Dst:      e.Prefix,
		HasDst:   true,
		Protos:   []uint8{netgen.ProtoUDP},
		SrcPorts: ports,
	}
}
