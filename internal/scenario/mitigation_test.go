package scenario

import (
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/ipfix"
)

// TestMitigationEfficacy reproduces the paper's Table 5 comparison as a
// measured experiment: under the escalate policy every amplification
// victim reacts with RTBH first and hands over to a FlowSpec discard
// rule mid-attack, so each event exhibits both mitigations back to back
// against the same attack. Scored against the fabric's ground-truth
// ledger:
//
//   - at least 90% of the amplification events are FULLY mitigated by
//     port filtering during the FlowSpec phase (the remainder are the
//     attacks with an unfilterable random-port component, §5.5);
//   - the dropped-legitimate fraction under FlowSpec is strictly below
//     the RTBH one for every event where both are measurable — the
//     whole point of fine-grained filtering.
func TestMitigationEfficacy(t *testing.T) {
	cfg := TestConfig()
	cfg.MitigationPolicy = "escalate"
	w, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, Sinks{Flow: func(*ipfix.RecordBatch) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}

	var total, full, legitPairs int
	for _, e := range w.Events {
		if e.Attack == nil || e.FlowSpec == nil {
			continue
		}
		em, ok := res.Mitigation[e.ID]
		if !ok {
			t.Fatalf("event %d has a FlowSpec window but no ledger entry", e.ID)
		}
		fsAtk := em.Attack[fabric.PhaseFlowSpec]
		if fsAtk.Total() == 0 {
			// Attack ended before the handover instant; nothing to score.
			continue
		}
		total++
		filterable := !e.Attack.ExtraRandomPort && !e.Attack.SYNFlood
		if fsAtk.Forwarded == 0 {
			full++
		} else if filterable {
			t.Errorf("event %d: filterable attack leaked %d packets past FlowSpec",
				e.ID, fsAtk.Forwarded)
		}

		rtbhLegit := em.Legit[fabric.PhaseRTBH]
		fsLegit := em.Legit[fabric.PhaseFlowSpec]
		if rtbhLegit.Total() == 0 || fsLegit.Total() == 0 {
			continue
		}
		rtbhFrac := float64(rtbhLegit.DroppedRTBH+rtbhLegit.DroppedFS) / float64(rtbhLegit.Total())
		fsFrac := float64(fsLegit.DroppedRTBH+fsLegit.DroppedFS) / float64(fsLegit.Total())
		if rtbhFrac == 0 {
			continue // RTBH never bit (no blackhole-ready ingress saw legit traffic)
		}
		legitPairs++
		if fsFrac >= rtbhFrac {
			t.Errorf("event %d: legit drop fraction %.3f under FlowSpec not below %.3f under RTBH",
				e.ID, fsFrac, rtbhFrac)
		}
	}

	if total < 20 {
		t.Fatalf("only %d amplification events with a measured FlowSpec phase; world too small to score", total)
	}
	if legitPairs < 10 {
		t.Fatalf("only %d events with measurable legitimate traffic in both phases", legitPairs)
	}
	if full*100 < total*90 {
		t.Errorf("fully mitigated %d/%d amplification events (%.1f%%), want >= 90%%",
			full, total, 100*float64(full)/float64(total))
	}
	t.Logf("amplification events scored: %d, fully mitigated: %d (%.1f%%), legit comparisons: %d",
		total, full, 100*float64(full)/float64(total), legitPairs)
}

// TestMitigationPolicyDefaultUntouched pins that the default policy
// plans no FlowSpec windows, issues no FlowSpec control messages, and
// keeps the ledger RTBH-only — the bit-exactness guarantee for every
// pre-existing fixture.
func TestMitigationPolicyDefaultUntouched(t *testing.T) {
	w := planTest(t)
	for _, e := range w.Events {
		if e.FlowSpec != nil {
			t.Fatalf("event %d planned a FlowSpec window under the default policy", e.ID)
		}
	}
	res, err := Run(w, Sinks{Flow: func(*ipfix.RecordBatch) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowSpecAnnouncements != 0 || res.FlowSpecWithdrawals != 0 {
		t.Fatalf("default run dispatched FlowSpec control: %d announces, %d withdraws",
			res.FlowSpecAnnouncements, res.FlowSpecWithdrawals)
	}
	for id, em := range res.Mitigation {
		fs := em.Attack[fabric.PhaseFlowSpec].Total() + em.Legit[fabric.PhaseFlowSpec].Total()
		if fs != 0 {
			t.Fatalf("event %d has FlowSpec-phase traffic under the default policy", id)
		}
	}
}

// TestMitigationPlanShape checks the planner's mode semantics: flowspec
// mode replaces the episodes outright, escalate truncates them at the
// handover instant, and the FlowSpec window always carries a source-port
// discard rule for the event prefix.
func TestMitigationPlanShape(t *testing.T) {
	for _, mode := range []string{"flowspec", "escalate", "mixed"} {
		cfg := TestConfig()
		cfg.MitigationPolicy = mode
		w, err := Plan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var withFS int
		for _, e := range w.Events {
			if e.FlowSpec == nil {
				continue
			}
			withFS++
			if e.Attack == nil || len(e.Attack.Protocols) == 0 {
				t.Fatalf("%s: non-amplification event %d got a FlowSpec window", mode, e.ID)
			}
			r := e.FlowSpec.Rule
			if r == nil || !r.HasDst || r.Dst != e.Prefix || len(r.SrcPorts) == 0 {
				t.Fatalf("%s: event %d rule malformed: %+v", mode, e.ID, r)
			}
			if mode == "flowspec" && len(e.Episodes) != 0 {
				t.Fatalf("flowspec: event %d kept %d RTBH episodes", e.ID, len(e.Episodes))
			}
			for _, ep := range e.Episodes {
				if ep.Withdraw.IsZero() || ep.Withdraw.After(e.FlowSpec.Start) {
					t.Fatalf("%s: event %d episode overlaps the FlowSpec window", mode, e.ID)
				}
			}
			if !e.FlowSpec.End.IsZero() && !e.FlowSpec.End.After(e.FlowSpec.Start) {
				t.Fatalf("%s: event %d empty FlowSpec window", mode, e.ID)
			}
			if e.Start().After(e.FlowSpec.Start) {
				t.Fatalf("%s: event %d starts after its FlowSpec window", mode, e.ID)
			}
		}
		if withFS < 10 {
			t.Fatalf("%s: only %d events with FlowSpec windows", mode, withFS)
		}
	}
}

// TestEscalationWindows pins that escalate leaves a real RTBH phase in
// front of the FlowSpec phase for long-enough events.
func TestEscalationWindows(t *testing.T) {
	cfg := TestConfig()
	cfg.MitigationPolicy = "escalate"
	w, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var both int
	for _, e := range w.Events {
		if e.FlowSpec == nil || len(e.Episodes) == 0 {
			continue
		}
		both++
		if d := e.FlowSpec.Start.Sub(e.Episodes[0].Announce); d < time.Minute {
			t.Fatalf("event %d RTBH phase only %v before escalation", e.ID, d)
		}
	}
	if both < 10 {
		t.Fatalf("only %d events with both phases", both)
	}
}
