package scenario

import (
	"math"
	"sort"

	"repro/internal/bgp"
	"repro/internal/netgen"
	"repro/internal/peeringdb"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

// Address plan constants. All blocks are disjoint by construction:
// peering LAN, victim-AS space and remote-AS space live in separate /8s.
const (
	peeringLANBase  = 0xB9010000 // 185.1.0.0/16
	victimBlockBase = 0x28000000 // 40.0.0.0, one /20 per victim AS
	victimBlockBits = 12         // 4096 addresses
	remoteBlockBase = 0x50000000 // 80.0.0.0, one /22 per remote AS
	remoteBlockBits = 10         // 1024 addresses

	rsASN         = 64500
	memberASNBase = 1001
	victimASNBase = 200001
	remoteASNBase = 400001
)

// popularReflectorParticipation lists per-rank probabilities that the
// top reflector-hosting ASes take part in an attack, producing the
// 20%-60% head of the paper's Fig 15 CDF.
var popularReflectorParticipation = []float64{0.60, 0.38, 0.30, 0.26, 0.24, 0.23, 0.22, 0.21, 0.21, 0.20}

// protocolCountDist is the target distribution of distinct amplification
// protocols per attack (paper Table 3): index = count.
var protocolCountDist = []float64{0.06, 0.40, 0.45, 0.083, 0.006, 0.001}

// Plan builds the full world for cfg. Planning is separate from running so
// tests can inspect ground truth without simulating traffic.
func Plan(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{Cfg: cfg, RSASN: rsASN, RSIP: peeringLANBase + 1}
	rng := stats.NewRNG(cfg.Seed)

	planMembers(w, rng.Fork(1))
	planVictimASes(w, rng.Fork(2))
	planRemoteASes(w, rng.Fork(3))
	planHosts(w, rng.Fork(4))
	planEvents(w, rng.Fork(5))
	planMitigation(w, rng.Fork(6))
	buildRegistries(w)
	return w, nil
}

// quantileOf returns the q-quantile of xs without modifying it.
func quantileOf(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

// logNormalMedian draws a lognormal variate with the given median and
// shape, clamped to [lo, hi].
func logNormalMedian(r *stats.RNG, median, sigma, lo, hi float64) float64 {
	v := r.LogNormal(math.Log(median), sigma)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func planMembers(w *World, r *stats.RNG) {
	n := w.Cfg.Members
	w.Members = make([]Member, n)
	w.memberIdx = make(map[uint32]int, n)

	// Organization-type marginals for members, NSP-heavy among the big
	// players as the paper observes (Fig 8).
	types := []peeringdb.OrgType{
		peeringdb.TypeNSP, peeringdb.TypeCableDSL, peeringdb.TypeContent,
		peeringdb.TypeEnterprise, peeringdb.TypeUnknown,
	}
	typeWeightsSmall := []float64{22, 28, 22, 6, 22}
	typeWeightsBig := []float64{45, 15, 20, 2, 18} // top traffic ranks skew NSP

	// Draw the heavy-tailed traffic weights first so that "big member"
	// is a rank, not an absolute threshold: the paper's NSP skew applies
	// to the top traffic contributors.
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = r.Pareto(1.05, 1, 4000)
	}
	bigCut := quantileOf(weights, 0.85)
	giantCut := quantileOf(weights, 0.96)

	for i := 0; i < n; i++ {
		asn := uint32(memberASNBase + i)
		weight := weights[i]
		tw := typeWeightsSmall
		if weight >= bigCut {
			tw = typeWeightsBig
		}
		typ := types[r.WeightedChoice(tw)]
		tier := tierMid
		switch {
		case weight >= giantCut:
			tier = tierGiant
		case weight >= bigCut:
			tier = tierBig
		}
		pol := drawPolicy(r, typ, tier)
		if i == 0 {
			// The designated top member (also the top reflector-hosting
			// origin AS) runs a competent network: it accepts host
			// blackholes. Since it carries the single largest share of
			// attack traffic, this anchors the traffic-weighted /32 drop
			// rate near the paper's ~50%.
			pol.Host = routeserver.AcceptFull
		}
		w.Members[i] = Member{
			ASN:           asn,
			IP:            peeringLANBase + 0x100 + uint32(i),
			Policy:        pol,
			TrafficWeight: weight,
			PDBType:       typ,
		}
		w.memberIdx[asn] = i
	}
}

// Member tiers by traffic rank. The paper's Figs 5-7 jointly require that
// the traffic-weighted acceptance of host blackholes lands near 50% while
// only about a third of the top-100 sources fully accept: the heaviest
// carriers must accept more often than the broad middle, where NSPs that
// mitigate outside the IXP dominate the rejections.
type memberTier int

const (
	tierMid memberTier = iota
	tierBig
	tierGiant
)

// drawPolicy assigns a blackhole import policy. The mix reproduces the
// paper's §4.2 findings: roughly a third of (traffic-weighted) peers fully
// accept /32 blackholes, half reject them, and a noticeable minority is
// inconsistently configured. NSPs skew toward rejecting, matching Fig 8's
// observation that global NSPs often mitigate outside the IXP.
func drawPolicy(r *stats.RNG, typ peeringdb.OrgType, tier memberTier) routeserver.Policy {
	pol := routeserver.Policy{Standard: routeserver.AcceptFull}

	// A small minority filters even standard-length route-server routes,
	// spreading /24 drop rates over the paper's 82%..100% band.
	switch {
	case r.Bool(0.04):
		pol.Standard = routeserver.AcceptNone
	case r.Bool(0.03):
		pol.Standard = routeserver.AcceptPartial
		pol.StandardFraction = 0.5 + 0.5*r.Float64()
	}

	acceptP, partialP := 0.40, 0.12
	if typ == peeringdb.TypeNSP {
		acceptP, partialP = 0.30, 0.11
	}
	switch tier {
	case tierGiant:
		acceptP = 0.88
	case tierBig:
		acceptP *= 0.62
	}
	switch {
	case r.Bool(acceptP):
		pol.Host = routeserver.AcceptFull
	case r.Bool(partialP / (1 - acceptP)):
		pol.Host = routeserver.AcceptPartial
		pol.HostFraction = 0.35 + 0.6*r.Float64()
	default:
		pol.Host = routeserver.AcceptNone
	}

	// /25../31 whitelisting is forgotten even more often (§7.1).
	switch {
	case r.Bool(0.22):
		pol.Mid = routeserver.AcceptFull
	case r.Bool(0.12):
		pol.Mid = routeserver.AcceptPartial
		pol.MidFraction = 0.15 + 0.75*r.Float64()
	default:
		pol.Mid = routeserver.AcceptNone
	}
	return pol
}

func planVictimASes(w *World, r *stats.RNG) {
	n := w.Cfg.VictimOriginASes
	w.VictimASes = make([]VictimAS, n)

	// RTBH-announcing peers: the first RTBHUsers members, with a Zipf
	// popularity so a handful of peers announce for many origin ASes.
	users := w.Cfg.RTBHUsers
	zipf := stats.NewZipf(users, 1.0)

	// Victim-AS organization types chosen so that the host populations
	// recover Table 4's marginals (clients mostly Cable/DSL/ISP, servers
	// mostly Content).
	types := []peeringdb.OrgType{
		peeringdb.TypeCableDSL, peeringdb.TypeContent, peeringdb.TypeNSP,
		peeringdb.TypeEnterprise, peeringdb.TypeUnknown,
	}
	weights := []float64{35, 12, 14, 2, 37}

	for i := 0; i < n; i++ {
		peerIdx := zipf.Draw(r)
		w.VictimASes[i] = VictimAS{
			ASN:     uint32(victimASNBase + i),
			Peer:    w.Members[peerIdx].ASN,
			Block:   bgp.MakePrefix(uint32(victimBlockBase+i<<victimBlockBits), 32-victimBlockBits),
			PDBType: types[r.WeightedChoice(weights)],
		}
	}
}

func planRemoteASes(w *World, r *stats.RNG) {
	n := w.Cfg.RemoteOriginASes
	w.RemoteASes = make([]RemoteAS, n)

	// Handover members weighted by traffic: a remote AS is reached via a
	// big transit member far more often than via a small one.
	weights := make([]float64, len(w.Members))
	for i, m := range w.Members {
		weights[i] = m.TrafficWeight
	}
	w.ConeByMember = make(map[uint32][]int)
	for i := 0; i < n; i++ {
		hIdx := r.WeightedChoice(weights)
		asn := uint32(remoteASNBase + i)
		switch {
		case i == 0:
			// The top reflector-hosting origin AS is itself a member and
			// hands over its own traffic: the paper finds the top origin
			// AS and top handover AS are identical.
			asn = w.Members[0].ASN
			hIdx = 0
		case i < len(popularReflectorParticipation):
			// The other popular reflector ASes route via distinct
			// members, so no single transit accumulates their combined
			// participation.
			hIdx = i % len(w.Members)
		}
		handover := w.Members[hIdx].ASN
		w.RemoteASes[i] = RemoteAS{
			ASN:      asn,
			Handover: handover,
			Block:    bgp.MakePrefix(uint32(remoteBlockBase+i<<remoteBlockBits), 32-remoteBlockBits),
		}
		w.ConeByMember[handover] = append(w.ConeByMember[handover], i)
	}

	// Remote pool for baseline traffic: remote endpoints scattered over
	// the remote address space, delivered by the biggest members.
	topHandovers := make([]uint32, 0, 24)
	order := make([]int, len(w.Members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return w.Members[order[a]].TrafficWeight > w.Members[order[b]].TrafficWeight
	})
	for i := 0; i < len(order) && i < 24; i++ {
		topHandovers = append(topHandovers, w.Members[order[i]].ASN)
	}
	w.RemotePool = &netgen.RemotePool{
		Handovers: topHandovers,
		AddrBase:  remoteBlockBase,
		AddrCount: uint32(n) << remoteBlockBits,
	}
}

// victimASByType groups victim-AS indices by organization type, used to
// place hosts so the Table 4 marginals come out.
func victimASByType(w *World) map[peeringdb.OrgType][]int {
	groups := make(map[peeringdb.OrgType][]int)
	for i, v := range w.VictimASes {
		groups[v.PDBType] = append(groups[v.PDBType], i)
	}
	return groups
}

// pickVictimAS draws a victim AS matching the per-kind type marginal.
func pickVictimAS(r *stats.RNG, groups map[peeringdb.OrgType][]int, kinds []peeringdb.OrgType, weights []float64) int {
	for tries := 0; tries < 8; tries++ {
		typ := kinds[r.WeightedChoice(weights)]
		g := groups[typ]
		if len(g) > 0 {
			return g[r.Intn(len(g))]
		}
	}
	// Fall back to any type that exists.
	for _, g := range groups {
		if len(g) > 0 {
			return g[r.Intn(len(g))]
		}
	}
	panic("scenario: no victim ASes")
}

func planHosts(w *World, r *stats.RNG) {
	n := w.Cfg.UniqueVictims
	w.Hosts = make([]*Host, 0, n)
	groups := victimASByType(w)

	// Host-kind mix: 70% quiet, 24% clients (mostly gaming), 6% servers,
	// reproducing the 4:1 client:server ratio among the ~30% of hosts
	// that meet the >=20-active-day criterion.
	nServers := n * 6 / 100
	nClients := n * 24 / 100
	nQuiet := n - nServers - nClients

	allTypes := []peeringdb.OrgType{
		peeringdb.TypeCableDSL, peeringdb.TypeContent, peeringdb.TypeNSP,
		peeringdb.TypeEnterprise, peeringdb.TypeUnknown,
	}
	clientWeights := []float64{60, 2, 14, 1, 23}  // Table 4 client column
	serverWeights := []float64{14, 34, 13, 1, 38} // Table 4 server column
	quietWeights := []float64{40, 8, 14, 2, 36}

	usedIPs := make(map[uint32]bool, n)
	hostIP := func(vas int) uint32 {
		block := w.VictimASes[vas].Block
		for {
			ip := block.Addr + uint32(r.Int63n(int64(block.NumAddresses())))
			if !usedIPs[ip] {
				usedIPs[ip] = true
				return ip
			}
		}
	}
	activeDays := func(p float64) []bool {
		days := make([]bool, w.Cfg.Days)
		for d := range days {
			days[d] = r.Bool(p)
		}
		return days
	}
	// Traffic magnitudes scale, structural draws (kinds, services, active
	// days) do not — the draw sequence is identical at every scale.
	s := w.Cfg.Scale()

	for i := 0; i < nServers; i++ {
		vas := pickVictimAS(r, groups, allTypes, serverWeights)
		ip := hostIP(vas)
		services := []netgen.Service{netgen.CommonServices[r.Intn(3)]}
		if r.Bool(0.5) {
			services = append(services, netgen.CommonServices[3+r.Intn(len(netgen.CommonServices)-3)])
		}
		h := &Host{
			IP:         ip,
			VictimAS:   vas,
			Kind:       HostServer,
			ActiveDays: activeDays(0.93),
			Server: &netgen.ServerProfile{
				IP:           ip,
				MemberAS:     w.VictimASes[vas].Peer,
				Services:     services,
				DailyPackets: int64(s * float64(w.Cfg.BaselineDailyPackets) * (0.5 + 3*r.Float64())),
			},
			ScanDailyPackets: int64(s * r.Pareto(1.3, 200, 5000)),
		}
		w.Hosts = append(w.Hosts, h)
	}
	for i := 0; i < nClients; i++ {
		vas := pickVictimAS(r, groups, allTypes, clientWeights)
		ip := hostIP(vas)
		kind := HostClient
		gaming := r.Bool(0.6)
		if gaming {
			kind = HostGamingClient
		}
		h := &Host{
			IP:         ip,
			VictimAS:   vas,
			Kind:       kind,
			ActiveDays: activeDays(0.9),
			Client: &netgen.ClientProfile{
				IP:             ip,
				MemberAS:       w.VictimASes[vas].Peer,
				SessionsPerDay: 3 + r.Intn(6),
				DailyPackets:   int64(s * float64(w.Cfg.BaselineDailyPackets) * (0.5 + 1.5*r.Float64())),
				Gaming:         gaming,
			},
			ScanDailyPackets: int64(s * r.Pareto(1.3, 100, 2000)),
		}
		w.Hosts = append(w.Hosts, h)
	}
	for i := 0; i < nQuiet; i++ {
		vas := pickVictimAS(r, groups, allTypes, quietWeights)
		h := &Host{
			IP:         hostIP(vas),
			VictimAS:   vas,
			Kind:       HostQuiet,
			ActiveDays: activeDays(0.015), // a stray active day here and there
		}
		if r.Bool(0.5) {
			h.ScanDailyPackets = int64(s * r.Pareto(1.5, 50, 500))
		}
		w.Hosts = append(w.Hosts, h)
	}
	// Shuffle so host index does not encode kind.
	r.Shuffle(len(w.Hosts), func(i, j int) { w.Hosts[i], w.Hosts[j] = w.Hosts[j], w.Hosts[i] })
}
