package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/fabric"
	"repro/internal/ipfix"
	"repro/internal/netgen"
	"repro/internal/obs"
	"repro/internal/routeserver"
	"repro/internal/stats"
)

// Sinks receives the simulation's measurement streams.
type Sinks struct {
	// Control receives every BGP message at the route server (wired to
	// an MRT writer in production use). May be nil.
	Control routeserver.Collector
	// Flow receives every sampled flow record, one batch per injected
	// packet batch (wired to an IPFIX writer). The sink borrows each
	// batch per the ipfix.RecordBatch contract. Required. Per-record
	// consumers can adapt with ipfix.EachRecord.
	Flow ipfix.BatchSink
	// Metrics, when non-nil, receives the route server's and the
	// fabric's observability metrics ("routeserver.*", "fabric.*").
	// Snapshot after Run returns.
	Metrics *obs.Registry
}

// Result summarizes a completed run.
type Result struct {
	World         *World
	FabricStats   fabric.Stats
	ControlMsgs   int
	Announcements int // UPDATE messages announcing RTBH prefixes
	Withdrawals   int // UPDATE messages withdrawing RTBH prefixes
	FlowRecords   int64
	// FlowSpecAnnouncements/Withdrawals count FlowSpec control messages
	// (zero under the default mitigation policy).
	FlowSpecAnnouncements int
	FlowSpecWithdrawals   int
	// Mitigation is the fabric's ground-truth per-event mitigation
	// ledger, keyed by event ID.
	Mitigation map[int]fabric.EventMitigation
}

// attackSlotDuration is the granularity at which attack traffic is
// generated; matching the analysis slot size keeps boundary noise small.
const attackSlotDuration = 5 * time.Minute

// controlMsg is one scheduled BGP action.
type controlMsg struct {
	t        time.Time
	event    *Event
	announce bool
	fs       bool // FlowSpec rule action instead of an RTBH route action
}

// Executor receives the planned world's totally ordered action stream
// from Drive: BGP control messages and packet batches, interleaved
// chronologically. Control must complete (the route server must have
// processed the update) before it returns, so that a subsequent Inject
// sees the new forwarding state — Drive relies on this for determinism.
type Executor interface {
	// Control delivers one UPDATE from peerAS timestamped ts.
	Control(ts time.Time, peerAS uint32, upd *bgp.Update) error
	// Inject offers one packet batch to the switching fabric.
	Inject(b *fabric.Batch) error
}

// DriveStats summarizes the control-plane actions Drive dispatched.
type DriveStats struct {
	Announcements int // UPDATE messages announcing RTBH prefixes
	Withdrawals   int // UPDATE messages withdrawing RTBH prefixes
	// FlowSpec rule announcements and withdrawals, dispatched as plain
	// UPDATEs carrying multiprotocol attributes through the same
	// Executor.Control path.
	FlowSpecAnnouncements int
	FlowSpecWithdrawals   int
}

// NewRouteServer constructs the route server of the planned world with
// every member session registered, exactly as Run does. Each member's
// registered address space is the victim blocks it announces for, which
// arms the route server's FlowSpec originator validation.
func NewRouteServer(w *World) (*routeserver.Server, error) {
	space := make(map[uint32][]bgp.Prefix)
	for _, v := range w.VictimASes {
		space[v.Peer] = append(space[v.Peer], v.Block)
	}
	rs := routeserver.New(w.RSASN, w.RSIP)
	for _, m := range w.Members {
		p := routeserver.Peer{ASN: m.ASN, IP: m.IP, Policy: m.Policy, Space: space[m.ASN]}
		if err := rs.AddPeer(p); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// Run executes the planned world chronologically, feeding the route
// server, the switching fabric and the sinks.
func Run(w *World, sinks Sinks) (*Result, error) {
	if sinks.Flow == nil {
		return nil, fmt.Errorf("scenario: Sinks.Flow is required")
	}
	res := &Result{World: w}

	var (
		rs        *routeserver.Server
		fb        *fabric.Fabric
		flowCount int64
	)
	st, err := Drive(w, func(fabricRNG *stats.RNG) (Executor, error) {
		var err error
		if rs, err = NewRouteServer(w); err != nil {
			return nil, err
		}
		if sinks.Control != nil {
			rs.SetCollector(sinks.Control)
		}
		fb, err = fabric.New(rs, w.Cfg.SamplingRate, fabricRNG, func(b *ipfix.RecordBatch) error {
			flowCount += int64(b.Len())
			return sinks.Flow(b)
		})
		if err != nil {
			return nil, err
		}
		fb.ClockOffset = w.Cfg.ClockOffset
		if sinks.Metrics != nil {
			rs.RegisterMetrics(sinks.Metrics)
			fb.RegisterMetrics(sinks.Metrics)
		}
		return directExecutor{rs: rs, fb: fb}, nil
	})
	if err != nil {
		return nil, err
	}

	res.FabricStats = fb.Stats()
	res.ControlMsgs = rs.MessagesProcessed()
	res.Announcements = st.Announcements
	res.Withdrawals = st.Withdrawals
	res.FlowSpecAnnouncements = st.FlowSpecAnnouncements
	res.FlowSpecWithdrawals = st.FlowSpecWithdrawals
	res.FlowRecords = flowCount
	res.Mitigation = fb.Mitigation()
	return res, nil
}

// directExecutor is the in-process executor Run uses: control messages
// go straight to the route server, batches straight to the fabric.
type directExecutor struct {
	rs *routeserver.Server
	fb *fabric.Fabric
}

func (e directExecutor) Control(ts time.Time, peerAS uint32, upd *bgp.Update) error {
	_, err := e.rs.Process(ts, peerAS, upd)
	return err
}

func (e directExecutor) Inject(b *fabric.Batch) error { return e.fb.Inject(b) }

// Drive walks the planned world's total event order and dispatches every
// action to the executor created by build. The RNG substream handed to
// build is the exact fork Run passes to fabric.New, so an executor that
// wraps a fabric constructed with it reproduces Run's data plane
// bit-identically; the control updates Drive builds are likewise
// bit-identical to Run's. This is the seam the live subsystem uses to
// put real transports between the scenario and the route server/fabric
// while keeping the archived dataset byte-identical to the batch path.
//
// When an executor call fails mid-walk (including a cancelled live run),
// Drive returns the stats of the actions dispatched so far alongside the
// error, so interrupted runs can still report what was delivered.
func Drive(w *World, build func(fabricRNG *stats.RNG) (Executor, error)) (*DriveStats, error) {
	rng := stats.NewRNG(w.Cfg.Seed ^ 0x52554e)
	ex, err := build(rng.Fork(1))
	if err != nil {
		return nil, err
	}
	st := &DriveStats{}

	// Index control messages and attack slots by day.
	days := w.Cfg.Days
	ctlByDay := make([][]controlMsg, days)
	dayIndex := func(t time.Time) int {
		d := int(t.Sub(w.Cfg.Start) / (24 * time.Hour))
		if d < 0 {
			d = 0
		}
		if d >= days {
			d = days - 1
		}
		return d
	}
	for _, e := range w.Events {
		for _, ep := range e.Episodes {
			ctlByDay[dayIndex(ep.Announce)] = append(ctlByDay[dayIndex(ep.Announce)],
				controlMsg{t: ep.Announce, event: e, announce: true})
			if !ep.Withdraw.IsZero() {
				ctlByDay[dayIndex(ep.Withdraw)] = append(ctlByDay[dayIndex(ep.Withdraw)],
					controlMsg{t: ep.Withdraw, event: e, announce: false})
			}
		}
		if fs := e.FlowSpec; fs != nil {
			ctlByDay[dayIndex(fs.Start)] = append(ctlByDay[dayIndex(fs.Start)],
				controlMsg{t: fs.Start, event: e, announce: true, fs: true})
			if !fs.End.IsZero() {
				ctlByDay[dayIndex(fs.End)] = append(ctlByDay[dayIndex(fs.End)],
					controlMsg{t: fs.End, event: e, announce: false, fs: true})
			}
		}
	}

	addSessionResets(w, ctlByDay, dayIndex, rng.Fork(3))

	attacksByDay := make([][]*Event, days)
	for _, e := range w.Events {
		if e.Attack == nil {
			continue
		}
		first := dayIndex(e.Attack.Start)
		last := dayIndex(e.Attack.End())
		for d := first; d <= last; d++ {
			attacksByDay[d] = append(attacksByDay[d], e)
		}
	}

	// Per-event lazily built attack vectors, released once an attack is
	// over to bound reflector-pool memory.
	vectors := make(map[int][]netgen.Vector)
	attackEnds := make(map[int]time.Time)
	// Per-host episode transition times for batch splitting, and the
	// attack-event spans the host's inbound traffic is attributed to in
	// the mitigation ledger.
	transitions := hostTransitions(w)
	spans := hostMitigationSpans(w)

	genRNG := rng.Fork(2)
	var batches []fabric.Batch
	for d := 0; d < days; d++ {
		dayStart := w.Cfg.Start.AddDate(0, 0, d)
		batches = batches[:0]
		batches = appendBaselineBatches(batches, w, d, dayStart, transitions, spans, genRNG)
		batches = appendAttackBatches(batches, w, attacksByDay[d], dayStart, vectors, genRNG)
		batches = appendInternalBatches(batches, w, dayStart, genRNG)

		ctl := ctlByDay[d]
		sort.SliceStable(ctl, func(i, j int) bool { return ctl[i].t.Before(ctl[j].t) })
		sort.SliceStable(batches, func(i, j int) bool { return batches[i].Time.Before(batches[j].Time) })

		// Release vector pools of attacks that ended before this day.
		for id, e := range attackEnds {
			if e.Before(dayStart) {
				delete(vectors, id)
				delete(attackEnds, id)
			}
		}
		for _, e := range attacksByDay[d] {
			attackEnds[e.ID] = e.Attack.End()
		}

		ci, bi := 0, 0
		for ci < len(ctl) || bi < len(batches) {
			// Control messages win ties so that a batch starting exactly
			// at an announcement sees the new state.
			if ci < len(ctl) && (bi >= len(batches) || !batches[bi].Time.Before(ctl[ci].t)) {
				upd, err := buildControlUpdate(ctl[ci], genRNG)
				if err != nil {
					return st, err
				}
				if err := ex.Control(ctl[ci].t, ctl[ci].event.Peer, upd); err != nil {
					return st, err
				}
				switch {
				case ctl[ci].fs && ctl[ci].announce:
					st.FlowSpecAnnouncements++
				case ctl[ci].fs:
					st.FlowSpecWithdrawals++
				case ctl[ci].announce:
					st.Announcements++
				default:
					st.Withdrawals++
				}
				ci++
				continue
			}
			if err := ex.Inject(&batches[bi]); err != nil {
				return st, err
			}
			bi++
		}
	}
	return st, nil
}

// buildControlUpdate constructs the announce/withdraw UPDATE of one
// scheduled control message, consuming the shared generator stream.
// FlowSpec actions are wrapped as plain UPDATEs (MP attributes, no IPv4
// NLRI) and draw nothing from the stream.
func buildControlUpdate(cm controlMsg, r *stats.RNG) (*bgp.Update, error) {
	e := cm.event
	if cm.fs {
		fsu := &bgp.FlowSpecUpdate{}
		if cm.announce {
			fsu.Announced = []*bgp.FlowRule{e.FlowSpec.Rule}
			fsu.ExtComms = []bgp.ExtCommunity{bgp.TrafficRateDiscard}
		} else {
			fsu.Withdrawn = []*bgp.FlowRule{e.FlowSpec.Rule}
		}
		return bgp.UpdateFromFlowSpec(fsu)
	}
	upd := &bgp.Update{}
	if cm.announce {
		comms := bgp.Communities{bgp.Blackhole}
		if r.Bool(0.5) {
			comms = append(comms, bgp.NoExport)
		}
		for _, excl := range e.TargetedExclude {
			comms = append(comms, bgp.MakeCommunity(0, uint16(excl)))
		}
		path := []uint32{e.Peer}
		if e.OriginAS != e.Peer {
			path = append(path, e.OriginAS)
		}
		upd.Attrs = bgp.PathAttrs{
			Origin:      bgp.OriginIGP,
			ASPath:      path,
			NextHop:     routeserver.BlackholeNextHop,
			Communities: comms,
		}
		upd.NLRI = []bgp.Prefix{e.Prefix}
	} else {
		upd.Withdrawn = []bgp.Prefix{e.Prefix}
	}
	return upd, nil
}

// hostTransitions collects, per host index, the sorted set of times at
// which the blackholing state of the host's address may change. Baseline
// batches are split at these times so that their samples see the correct
// forwarding decision. Besides the host's own /32 events, covering
// shorter-prefix events (a /24 blackhole blankets every host in the
// subnet) contribute transitions too.
func hostTransitions(w *World) map[int][]time.Time {
	out := make(map[int][]time.Time)
	appendEpisodes := func(host int, e *Event) {
		for _, ep := range e.Episodes {
			out[host] = append(out[host], ep.Announce)
			if !ep.Withdraw.IsZero() {
				out[host] = append(out[host], ep.Withdraw)
			}
		}
		if fs := e.FlowSpec; fs != nil {
			out[host] = append(out[host], fs.Start)
			if !fs.End.IsZero() {
				out[host] = append(out[host], fs.End)
			}
		}
	}
	var wide []*Event // events on prefixes shorter than /32
	for _, e := range w.Events {
		if e.Prefix.Len < 32 {
			wide = append(wide, e)
		}
		if e.Host >= 0 && e.Prefix.Len == 32 {
			appendEpisodes(e.Host, e)
		}
	}
	for hi, h := range w.Hosts {
		for _, e := range wide {
			if e.Prefix.Contains(h.IP) {
				appendEpisodes(hi, e)
			}
		}
	}
	for h := range out {
		ts := out[h]
		sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
		out[h] = ts
	}
	return out
}

// mitSpan is the time range during which a host's inbound traffic is
// attributed to one attack event in the fabric's mitigation ledger: from
// the earlier of attack start and first mitigation action to the later
// of attack end and mitigation end.
type mitSpan struct {
	e        *Event
	from, to time.Time
}

// hostMitigationSpans indexes the attack events per victim host.
func hostMitigationSpans(w *World) map[int][]mitSpan {
	out := make(map[int][]mitSpan)
	for _, e := range w.Events {
		if e.Attack == nil || e.Host < 0 {
			continue
		}
		from := e.Attack.Start
		if s := e.Start(); s.Before(from) {
			from = s
		}
		to := e.Attack.End()
		if end, ok := e.End(); !ok {
			to = w.Cfg.End()
		} else if end.After(to) {
			to = end
		}
		out[e.Host] = append(out[e.Host], mitSpan{e: e, from: from, to: to})
	}
	for h := range out {
		sp := out[h]
		sort.Slice(sp, func(i, j int) bool { return sp[i].from.Before(sp[j].from) })
		out[h] = sp
	}
	return out
}

// splitBatch splits b at the given transition times, dividing the packet
// count proportionally to sub-interval duration. Batches untouched by any
// transition are appended unchanged.
func splitBatch(dst []fabric.Batch, b fabric.Batch, transitions []time.Time) []fabric.Batch {
	end := b.Time.Add(b.Duration)
	var cuts []time.Time
	for _, t := range transitions {
		if t.After(b.Time) && t.Before(end) {
			cuts = append(cuts, t)
		}
	}
	if len(cuts) == 0 {
		return append(dst, b)
	}
	prev := b.Time
	total := float64(b.Duration)
	remaining := b.Packets
	for i := 0; i <= len(cuts); i++ {
		var segEnd time.Time
		if i < len(cuts) {
			segEnd = cuts[i]
		} else {
			segEnd = end
		}
		seg := b
		seg.Time = prev
		seg.Duration = segEnd.Sub(prev)
		if i < len(cuts) {
			seg.Packets = int64(float64(b.Packets) * float64(seg.Duration) / total)
		} else {
			seg.Packets = remaining
		}
		remaining -= seg.Packets
		if seg.Packets > 0 && seg.Duration > 0 {
			dst = append(dst, seg)
		}
		prev = segEnd
	}
	return dst
}

// appendBaselineBatches emits the legitimate and scan traffic of all hosts
// active on day d, split at blackholing transitions.
func appendBaselineBatches(dst []fabric.Batch, w *World, d int, dayStart time.Time,
	transitions map[int][]time.Time, spans map[int][]mitSpan, r *stats.RNG) []fabric.Batch {
	var raw []fabric.Batch
	for hi, h := range w.Hosts {
		if d >= len(h.ActiveDays) {
			continue
		}
		raw = raw[:0]
		if h.ActiveDays[d] {
			switch {
			case h.Server != nil:
				raw = h.Server.DayBatches(raw, dayStart, w.RemotePool, r)
			case h.Client != nil:
				raw = h.Client.DayBatches(raw, dayStart, w.RemotePool, r)
			default:
				// A quiet host's stray active day: a trickle of traffic.
				peer := w.VictimASes[h.VictimAS].Peer
				raw = append(raw, fabric.Batch{
					Time: dayStart, Duration: 24 * time.Hour,
					IngressAS: w.RemotePool.Handover(r), EgressAS: peer,
					SrcIP: w.RemotePool.Addr(r), DstIP: h.IP,
					SrcPort: 443, DstPort: netgen.EphemeralPort(r),
					Proto: netgen.ProtoTCP, PacketSize: 600,
					Packets: 2000 + r.Int63n(8000),
				})
			}
		}
		if h.ScanDailyPackets > 0 && r.Bool(0.3) {
			peer := w.VictimASes[h.VictimAS].Peer
			raw = netgen.ScanBatches(raw, dayStart, h.IP, peer, h.ScanDailyPackets, w.RemotePool, r)
		}
		if len(raw) == 0 {
			continue
		}
		// All of a host's traffic — inbound, outbound, scans — anchors to
		// the member announcing the host's prefix: in a federated run the
		// host is observable exactly where its member connects.
		owner := w.VictimASes[h.VictimAS].Peer
		for i := range raw {
			raw[i].Owner = owner
		}
		tr := transitions[hi]
		sp := spans[hi]
		for _, b := range raw {
			n0 := len(dst)
			dst = splitBatch(dst, b, tr)
			if len(sp) == 0 {
				continue
			}
			// Attribute inbound segments to the covering attack event as
			// the victim's legitimate traffic. Segments were split at
			// every mitigation transition, so the phase at the segment
			// start holds throughout it.
			for i := n0; i < len(dst); i++ {
				if dst[i].DstIP != h.IP {
					continue
				}
				for _, s := range sp {
					if !dst[i].Time.Before(s.from) && dst[i].Time.Before(s.to) {
						dst[i].Event = s.e.ID + 1
						dst[i].Mitigation = s.e.MitigationPhase(dst[i].Time)
						break
					}
				}
			}
		}
	}
	return dst
}

// appendAttackBatches emits attack traffic slots for day d.
func appendAttackBatches(dst []fabric.Batch, w *World, attacks []*Event, dayStart time.Time,
	vectors map[int][]netgen.Vector, r *stats.RNG) []fabric.Batch {
	dayEnd := dayStart.Add(24 * time.Hour)
	var slotBuf []fabric.Batch
	for _, e := range attacks {
		a := e.Attack
		vs, ok := vectors[e.ID]
		if !ok {
			vs = buildVectors(w, e, r)
			vectors[e.ID] = vs
		}
		if len(vs) == 0 {
			continue
		}
		victimIP := victimAddr(w, e)
		victimAS := e.Peer

		// The host's own transitions bound drop-decision error; attack
		// slots are split at them like baseline batches.
		var tr []time.Time
		for _, ep := range e.Episodes {
			tr = append(tr, ep.Announce)
			if !ep.Withdraw.IsZero() {
				tr = append(tr, ep.Withdraw)
			}
		}
		if fs := e.FlowSpec; fs != nil {
			tr = append(tr, fs.Start)
			if !fs.End.IsZero() {
				tr = append(tr, fs.End)
			}
		}
		sort.Slice(tr, func(i, j int) bool { return tr[i].Before(tr[j]) })

		start := a.Start
		if start.Before(dayStart) {
			start = dayStart
		}
		end := a.End()
		if end.After(dayEnd) {
			end = dayEnd
		}
		// Bilateral (non-route-server) blackholing is an agreement with a
		// single neighbor: one designated handover member drops the
		// event's traffic regardless of route-server state.
		var bilateralAS uint32
		for t := start; t.Before(end); t = t.Add(attackSlotDuration) {
			slotEnd := t.Add(attackSlotDuration)
			if slotEnd.After(end) {
				slotEnd = end
			}
			dur := slotEnd.Sub(t)
			if dur <= 0 {
				break
			}
			pps := a.PPS * (0.8 + 0.4*r.Float64())
			perVector := pps / float64(len(vs))
			slotBuf = slotBuf[:0]
			for _, v := range vs {
				slotBuf = v.Batches(slotBuf, t, dur, perVector, victimIP, victimAS, r)
			}
			if e.Bilateral && bilateralAS == 0 && len(slotBuf) > 0 {
				bilateralAS = slotBuf[0].IngressAS
			}
			// The bilateral neighbor reacts like the victim does: its
			// dropping starts with the first announcement, not with the
			// attack itself.
			bilateralLive := e.Bilateral && !t.Before(e.Start())
			for i := range slotBuf {
				slotBuf[i].Owner = victimAS
				slotBuf[i].Event = e.ID + 1
				slotBuf[i].Attack = true
				if bilateralLive && slotBuf[i].IngressAS == bilateralAS {
					slotBuf[i].BilateralDropFraction = 1
				}
				n0 := len(dst)
				dst = splitBatch(dst, slotBuf[i], tr)
				// Segments lie between mitigation transitions, so one
				// phase covers each.
				for j := n0; j < len(dst); j++ {
					dst[j].Mitigation = e.MitigationPhase(dst[j].Time)
				}
			}
		}
	}
	return dst
}

// victimAddr returns the concrete attacked address of an event: the host
// address, or an address inside the prefix for hostless events.
func victimAddr(w *World, e *Event) uint32 {
	if e.Host >= 0 {
		return w.Hosts[e.Host].IP
	}
	return e.Prefix.Addr + 1
}

// buildVectors materializes the attack's vector set: reflector pools per
// origin AS for amplification, and transit handovers for direct floods.
func buildVectors(w *World, e *Event, r *stats.RNG) []netgen.Vector {
	a := e.Attack
	var out []netgen.Vector

	if len(a.Protocols) > 0 {
		nAmp := int(r.Poisson(float64(w.Cfg.MeanAmplifiersPerAttack)))
		if nAmp < len(a.OriginASes) {
			nAmp = len(a.OriginASes)
		}
		perAS := nAmp / len(a.OriginASes)
		if perAS == 0 {
			perAS = 1
		}
		var pool []netgen.Reflector
		for _, asIdx := range a.OriginASes {
			ras := w.RemoteASes[asIdx]
			for i := 0; i < perAS; i++ {
				ip := ras.Block.Addr + uint32(r.Int63n(int64(ras.Block.NumAddresses())))
				pool = append(pool, netgen.Reflector{IP: ip, OriginAS: ras.ASN, HandoverAS: ras.Handover})
			}
		}
		for _, proto := range a.Protocols {
			out = append(out, &netgen.AmplificationVector{Protocol: proto, Reflectors: pool})
		}
	}

	transit := make([]uint32, 0, 3)
	for i := 0; i < 3 && i < len(w.RemotePool.Handovers); i++ {
		transit = append(transit, w.RemotePool.Handovers[r.Intn(len(w.RemotePool.Handovers))])
	}
	if a.SYNFlood {
		out = append(out, &netgen.SYNFloodVector{Handovers: transit, DstPorts: []uint16{80, 443}})
	}
	if a.ExtraRandomPort {
		if r.Bool(0.5) {
			out = append(out, &netgen.RandomPortUDPVector{Handovers: transit})
		} else {
			out = append(out, &netgen.RotatingPortVector{Handovers: transit})
		}
	}
	return out
}

// appendInternalBatches emits the small share of IXP-internal flows that
// the paper removes during data cleaning.
func appendInternalBatches(dst []fabric.Batch, w *World, dayStart time.Time, r *stats.RNG) []fabric.Batch {
	if w.Cfg.InternalTrafficShare <= 0 {
		return dst
	}
	// Rough daily packet volume of the relevant traffic, from which the
	// internal share is derived.
	busy := len(w.Hosts) / 3
	daily := float64(busy) * 2 * float64(w.Cfg.BaselineDailyPackets) * w.Cfg.Scale()
	pkts := int64(daily * w.Cfg.InternalTrafficShare)
	// Keep internal traffic visible even in miniature test worlds: at
	// least ~0.4 expected samples per day.
	if floor := 2 * w.Cfg.SamplingRate / 5; pkts < floor {
		pkts = floor
	}
	for i := 0; i < 2; i++ {
		m := w.Members[r.Intn(len(w.Members))].ASN
		dst = append(dst, fabric.Batch{
			Time: dayStart.Add(time.Duration(i) * 12 * time.Hour), Duration: 12 * time.Hour,
			IngressAS: m,
			EgressAS:  0,
			Owner:     m,
			SrcIP:     w.RSIP, DstIP: w.RSIP + 1,
			SrcPort: 179, DstPort: netgen.EphemeralPort(r),
			Proto: netgen.ProtoTCP, PacketSize: 100,
			Packets:  pkts / 2,
			Internal: true,
		})
	}
	return dst
}

// addSessionResets injects BGP session flaps: a handful of times over the
// period, one of the heaviest RTBH users re-announces its entire active
// blackhole set within a minute. These bursts produce the message-rate
// spikes of the paper's Fig 3 while leaving event structure untouched
// (re-announcements of active routes merge into the same event).
func addSessionResets(w *World, ctlByDay [][]controlMsg, dayIndex func(time.Time) int, r *stats.RNG) {
	// The three peers with the most events are reset candidates.
	counts := make(map[uint32]int)
	for _, e := range w.Events {
		counts[e.Peer]++
	}
	type pc struct {
		peer uint32
		n    int
	}
	var peers []pc
	for p, n := range counts {
		peers = append(peers, pc{p, n})
	}
	sort.Slice(peers, func(i, j int) bool {
		if peers[i].n != peers[j].n {
			return peers[i].n > peers[j].n
		}
		return peers[i].peer < peers[j].peer
	})
	if len(peers) > 3 {
		peers = peers[:3]
	}
	if len(peers) == 0 {
		return
	}

	period := w.Cfg.End().Sub(w.Cfg.Start)
	nResets := max(2, w.Cfg.Days/15)
	for i := 0; i < nResets; i++ {
		peer := peers[r.Intn(len(peers))].peer
		// Leave margin at the period edges.
		at := w.Cfg.Start.Add(time.Duration(0.05*float64(period)) +
			time.Duration(r.Float64()*0.9*float64(period)))
		for _, e := range w.Events {
			if e.Peer != peer {
				continue
			}
			// Re-announce only routes solidly inside an active episode.
			for _, ep := range e.Episodes {
				wd := ep.Withdraw
				if wd.IsZero() {
					wd = w.Cfg.End()
				}
				if !at.After(ep.Announce) || !at.Add(2*time.Minute).Before(wd) {
					continue
				}
				t := at.Add(time.Duration(r.Int63n(int64(50 * time.Second))))
				ctlByDay[dayIndex(t)] = append(ctlByDay[dayIndex(t)],
					controlMsg{t: t, event: e, announce: true})
				break
			}
		}
	}
}
