package scenario

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/fabric"
	"repro/internal/ipfix"
)

func TestConfigValidation(t *testing.T) {
	good := TestConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("TestConfig invalid: %v", err)
	}
	dc := DefaultConfig()
	if err := dc.Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bc := BenchConfig()
	if err := bc.Validate(); err != nil {
		t.Fatalf("BenchConfig invalid: %v", err)
	}
	bad := good
	bad.Days = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("Days=1 accepted")
	}
	bad = good
	bad.RTBHUsers = bad.Members + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("RTBHUsers > Members accepted")
	}
	bad = good
	bad.UniqueVictims = bad.EventsTotal + 1
	if err := bad.Validate(); err == nil {
		t.Fatal("UniqueVictims > EventsTotal accepted")
	}
}

func planTest(t *testing.T) *World {
	t.Helper()
	w, err := Plan(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPlanDeterministic(t *testing.T) {
	w1 := planTest(t)
	w2 := planTest(t)
	if len(w1.Events) != len(w2.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(w1.Events), len(w2.Events))
	}
	for i := range w1.Events {
		a, b := w1.Events[i], w2.Events[i]
		if a.Prefix != b.Prefix || !a.Start().Equal(b.Start()) || a.Class != b.Class {
			t.Fatalf("event %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestPlanPopulationShape(t *testing.T) {
	w := planTest(t)
	cfg := w.Cfg
	if len(w.Members) != cfg.Members {
		t.Fatalf("members = %d", len(w.Members))
	}
	if len(w.Hosts) != cfg.UniqueVictims {
		t.Fatalf("hosts = %d", len(w.Hosts))
	}
	// Event count within 10% of the budget (overlap resolution may drop
	// a few events).
	if len(w.Events) < cfg.EventsTotal*90/100 || len(w.Events) > cfg.EventsTotal+w.SquatPrefix {
		t.Fatalf("events = %d, budget %d", len(w.Events), cfg.EventsTotal)
	}

	classes := map[EventClass]int{}
	for _, e := range w.Events {
		classes[e.Class]++
	}
	total := float64(len(w.Events))
	ddosFrac := float64(classes[ClassDDoS]) / total
	if ddosFrac < 0.25 || ddosFrac > 0.42 {
		t.Fatalf("DDoS fraction = %v, want ~0.33", ddosFrac)
	}
	zombieFrac := float64(classes[ClassZombie]) / total
	if zombieFrac < 0.08 || zombieFrac > 0.19 {
		t.Fatalf("zombie fraction = %v, want ~0.13", zombieFrac)
	}
	if classes[ClassSquatting] < 5 {
		t.Fatalf("squatting events = %d", classes[ClassSquatting])
	}

	kinds := map[HostKind]int{}
	for _, h := range w.Hosts {
		kinds[h.Kind]++
	}
	if kinds[HostQuiet] < len(w.Hosts)/2 {
		t.Fatalf("quiet hosts = %d of %d, want majority", kinds[HostQuiet], len(w.Hosts))
	}
	if kinds[HostServer] == 0 || kinds[HostClient]+kinds[HostGamingClient] == 0 {
		t.Fatal("missing server or client hosts")
	}
	// 4:1 client:server ratio, roughly.
	ratio := float64(kinds[HostClient]+kinds[HostGamingClient]) / float64(kinds[HostServer])
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("client:server ratio = %v, want ~4", ratio)
	}
}

func TestPlanEventInvariants(t *testing.T) {
	w := planTest(t)
	endOfPeriod := w.Cfg.End()
	for _, e := range w.Events {
		if len(e.Episodes) == 0 {
			t.Fatalf("event %d has no episodes", e.ID)
		}
		prev := time.Time{}
		for _, ep := range e.Episodes {
			if !ep.Announce.After(prev) {
				t.Fatalf("event %d episodes not increasing", e.ID)
			}
			if !ep.Withdraw.IsZero() {
				if !ep.Withdraw.After(ep.Announce) {
					t.Fatalf("event %d withdraw before announce", e.ID)
				}
				if ep.Withdraw.After(endOfPeriod) {
					t.Fatalf("event %d withdraw after period end", e.ID)
				}
				prev = ep.Withdraw
			} else {
				prev = endOfPeriod
			}
		}
		if e.Class == ClassDDoS {
			if e.Attack == nil {
				t.Fatalf("DDoS event %d without attack", e.ID)
			}
			if e.Attack.Start.After(e.Start()) {
				t.Fatalf("event %d: attack starts after first announce", e.ID)
			}
			// Reaction latency must be under an hour.
			if lat := e.Start().Sub(e.Attack.Start); lat > time.Hour {
				t.Fatalf("event %d reaction latency %v", e.ID, lat)
			}
		} else if e.Attack != nil {
			t.Fatalf("%s event %d has an attack", e.Class, e.ID)
		}
		if e.Class == ClassSquatting {
			if e.Prefix.Len > 24 {
				t.Fatalf("squatting prefix %v longer than /24", e.Prefix)
			}
			if e.Host != -1 {
				t.Fatalf("squatting event with host")
			}
		}
		if _, ok := w.MemberByASN(e.Peer); !ok {
			t.Fatalf("event %d peer AS%d is not a member", e.ID, e.Peer)
		}
	}
}

func TestPlanSameHostEventsSeparated(t *testing.T) {
	w := planTest(t)
	lastEnd := map[string]time.Time{}
	for _, e := range w.Events {
		key := e.Prefix.String()
		if last, ok := lastEnd[key]; ok {
			if e.Start().Before(last) {
				t.Fatalf("events on %s overlap: start %v before previous end %v", key, e.Start(), last)
			}
		}
		if end, ok := e.End(); ok {
			if end.After(lastEnd[key]) {
				lastEnd[key] = end
			}
		} else {
			lastEnd[key] = w.Cfg.End()
		}
	}
}

func TestPlanAttackMix(t *testing.T) {
	w := planTest(t)
	protoCounts := map[int]int{}
	nAttacks := 0
	filterable := 0
	for _, e := range w.Events {
		if e.Attack == nil {
			continue
		}
		nAttacks++
		protoCounts[len(e.Attack.Protocols)]++
		if len(e.Attack.Protocols) > 0 && !e.Attack.ExtraRandomPort && !e.Attack.SYNFlood {
			filterable++
		}
	}
	if nAttacks == 0 {
		t.Fatal("no attacks planned")
	}
	// Table 3 shape: 1 and 2 protocols dominate.
	if protoCounts[1]+protoCounts[2] < nAttacks/2 {
		t.Fatalf("1-2 protocol attacks = %d of %d", protoCounts[1]+protoCounts[2], nAttacks)
	}
	// ~90% fully filterable by the port list.
	frac := float64(filterable) / float64(nAttacks)
	if frac < 0.80 || frac > 0.97 {
		t.Fatalf("filterable fraction = %v, want ~0.90", frac)
	}
}

func TestPlanTargetingEpoch(t *testing.T) {
	w := planTest(t)
	epochStart := w.Cfg.Start.AddDate(0, 0, w.Cfg.TargetedEpochStartDay)
	epochEnd := epochStart.AddDate(0, 0, w.Cfg.TargetedEpochDays)
	inEpoch, outEpoch := 0, 0
	for _, e := range w.Events {
		if len(e.TargetedExclude) == 0 {
			continue
		}
		if e.Start().After(epochStart) && e.Start().Before(epochEnd) {
			inEpoch++
		} else {
			outEpoch++
		}
	}
	if inEpoch == 0 {
		t.Fatal("no targeted events during the epoch")
	}
	if outEpoch > inEpoch {
		t.Fatalf("targeted outside epoch (%d) exceeds inside (%d)", outEpoch, inEpoch)
	}
}

func TestPlanRegistries(t *testing.T) {
	w := planTest(t)
	if w.PDB.Len() == 0 {
		t.Fatal("empty PeeringDB registry")
	}
	if w.IP2AS.Len() != len(w.VictimASes)+len(w.RemoteASes) {
		t.Fatalf("ip2as entries = %d", w.IP2AS.Len())
	}
	// Every host resolves to its victim AS.
	for _, h := range w.Hosts[:50] {
		asn, ok := w.IP2AS.Lookup(h.IP)
		if !ok || asn != w.VictimASes[h.VictimAS].ASN {
			t.Fatalf("host %x resolves to %d, want %d", h.IP, asn, w.VictimASes[h.VictimAS].ASN)
		}
	}
	// Top remote AS is a member (top origin == top handover).
	if w.RemoteASes[0].ASN != w.Members[0].ASN || w.RemoteASes[0].Handover != w.Members[0].ASN {
		t.Fatalf("top remote AS not the designated member: %+v", w.RemoteASes[0])
	}
}

func TestSplitBatch(t *testing.T) {
	b := fabric.Batch{
		Time:       time.Unix(0, 0),
		Duration:   100 * time.Second,
		Packets:    1000,
		PacketSize: 100,
	}
	cuts := []time.Time{time.Unix(25, 0), time.Unix(50, 0), time.Unix(200, 0)}
	out := splitBatch(nil, b, cuts)
	if len(out) != 3 {
		t.Fatalf("segments = %d, want 3", len(out))
	}
	var total int64
	for _, s := range out {
		total += s.Packets
		if s.Duration <= 0 {
			t.Fatalf("segment with non-positive duration: %+v", s)
		}
	}
	if total != 1000 {
		t.Fatalf("packets not conserved: %d", total)
	}
	if out[0].Packets != 250 || out[1].Packets != 250 || out[2].Packets != 500 {
		t.Fatalf("split = %d/%d/%d", out[0].Packets, out[1].Packets, out[2].Packets)
	}
	// No cuts: unchanged.
	out = splitBatch(nil, b, []time.Time{time.Unix(500, 0)})
	if len(out) != 1 || out[0].Packets != 1000 {
		t.Fatalf("no-cut split = %+v", out)
	}
}

func runSmall(t *testing.T) (*World, *Result, []ipfix.FlowRecord, []controlArchive) {
	t.Helper()
	cfg := TestConfig()
	cfg.Days = 14
	cfg.EventsTotal = 400
	cfg.UniqueVictims = 200
	cfg.Members = 80
	cfg.RTBHUsers = 15
	cfg.VictimOriginASes = 20
	cfg.RemoteOriginASes = 300
	w, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flows []ipfix.FlowRecord
	var msgs []controlArchive
	res, err := Run(w, Sinks{
		Control: func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
			msgs = append(msgs, controlArchive{ts, peerAS, len(msg)})
		},
		Flow: func(b *ipfix.RecordBatch) error {
			flows = append(flows, b.Recs...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, res, flows, msgs
}

type controlArchive struct {
	ts     time.Time
	peerAS uint32
	n      int
}

func TestRunEndToEnd(t *testing.T) {
	w, res, flows, msgs := runSmall(t)

	if res.Announcements == 0 || res.Withdrawals == 0 {
		t.Fatalf("control plane empty: %+v", res)
	}
	if res.Announcements < len(w.Events) {
		t.Fatalf("announcements (%d) below event count (%d)", res.Announcements, len(w.Events))
	}
	if len(msgs) != res.ControlMsgs {
		t.Fatalf("collector saw %d messages, server processed %d", len(msgs), res.ControlMsgs)
	}
	if len(flows) == 0 {
		t.Fatal("no flow records")
	}
	if res.FlowRecords != int64(len(flows)) {
		t.Fatalf("record counters disagree: %d vs %d", res.FlowRecords, len(flows))
	}

	// Some traffic must be dropped (blackholed), some forwarded.
	dropped, internal := 0, 0
	for _, f := range flows {
		switch f.DstMAC {
		case fabric.BlackholeMAC:
			dropped++
		case fabric.InternalMAC:
			internal++
		}
	}
	if dropped == 0 {
		t.Fatal("no dropped records")
	}
	if dropped == len(flows) {
		t.Fatal("everything dropped")
	}
	if internal == 0 {
		t.Fatal("no internal records to clean")
	}

	st := res.FabricStats
	if st.PacketsDropped == 0 || st.PacketsDropped >= st.PacketsIn {
		t.Fatalf("fabric stats implausible: %+v", st)
	}
}

func TestRunDeterministic(t *testing.T) {
	_, res1, flows1, _ := runSmall(t)
	_, res2, flows2, _ := runSmall(t)
	if res1.FlowRecords != res2.FlowRecords || res1.Announcements != res2.Announcements {
		t.Fatalf("runs differ: %+v vs %+v", res1, res2)
	}
	for i := range flows1 {
		if flows1[i] != flows2[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestRunControlChronological(t *testing.T) {
	_, _, _, msgs := runSmall(t)
	for i := 1; i < len(msgs); i++ {
		if msgs[i].ts.Before(msgs[i-1].ts) {
			t.Fatalf("control messages out of order at %d", i)
		}
	}
}

func TestRunClockOffsetVisible(t *testing.T) {
	// With a huge configured offset the flow timestamps must shift.
	cfg := TestConfig()
	cfg.Days = 5
	cfg.EventsTotal = 60
	cfg.UniqueVictims = 30
	cfg.Members = 40
	cfg.RTBHUsers = 8
	cfg.VictimOriginASes = 10
	cfg.RemoteOriginASes = 100
	cfg.ClockOffset = -30 * time.Hour // absurd on purpose
	w, err := Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	earliest := time.Time{}
	_, err = Run(w, Sinks{Flow: ipfix.EachRecord(func(r *ipfix.FlowRecord) error {
		if earliest.IsZero() || r.Start.Before(earliest) {
			earliest = r.Start
		}
		return nil
	})})
	if err != nil {
		t.Fatal(err)
	}
	if !earliest.Before(cfg.Start) {
		t.Fatalf("clock offset not applied: earliest sample %v", earliest)
	}
}

func TestTruthSummary(t *testing.T) {
	w := planTest(t)
	gt := Truth(w)
	if len(gt.Events) != len(w.Events) {
		t.Fatalf("truth events = %d", len(gt.Events))
	}
	if len(gt.Members) != len(w.Members) {
		t.Fatalf("truth members = %d", len(gt.Members))
	}
	if gt.ClassCounts["ddos"] == 0 || gt.ClassCounts["zombie"] == 0 {
		t.Fatalf("class counts = %v", gt.ClassCounts)
	}
	sum := 0
	for _, c := range gt.ClassCounts {
		sum += c
	}
	if sum != len(w.Events) {
		t.Fatalf("class counts sum to %d, events %d", sum, len(w.Events))
	}
}

func TestTruthJSONRoundTrip(t *testing.T) {
	w := planTest(t)
	gt := Truth(w)
	var buf bytes.Buffer
	if err := gt.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTruthJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(gt.Events) || got.Seed != gt.Seed {
		t.Fatal("truth round trip mismatch")
	}
}

func TestPlanAcrossSeedsProperty(t *testing.T) {
	// Plan invariants must hold for any seed, not just the default.
	cfg := TestConfig()
	cfg.Days = 12
	cfg.EventsTotal = 200
	cfg.UniqueVictims = 100
	cfg.Members = 60
	cfg.RTBHUsers = 10
	cfg.VictimOriginASes = 15
	cfg.RemoteOriginASes = 150
	for seed := uint64(2); seed < 12; seed++ {
		cfg.Seed = seed
		w, err := Plan(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		endOfPeriod := w.Cfg.End()
		for _, e := range w.Events {
			if len(e.Episodes) == 0 {
				t.Fatalf("seed %d: event without episodes", seed)
			}
			prev := time.Time{}
			for i, ep := range e.Episodes {
				if !ep.Announce.After(prev) {
					t.Fatalf("seed %d: episodes out of order", seed)
				}
				if ep.Withdraw.IsZero() {
					if i != len(e.Episodes)-1 {
						t.Fatalf("seed %d: open episode not last", seed)
					}
					prev = endOfPeriod
				} else {
					if !ep.Withdraw.After(ep.Announce) || ep.Withdraw.After(endOfPeriod) {
						t.Fatalf("seed %d: bad withdraw", seed)
					}
					prev = ep.Withdraw
				}
			}
			if e.Host >= 0 {
				h := w.Hosts[e.Host]
				if !e.Prefix.Contains(h.IP) {
					t.Fatalf("seed %d: event prefix %v does not contain host %x", seed, e.Prefix, h.IP)
				}
			}
			if _, ok := w.MemberByASN(e.Peer); !ok {
				t.Fatalf("seed %d: event peer not a member", seed)
			}
		}
		// Address plan stays collision-free: every host resolves to its AS.
		for _, h := range w.Hosts[:20] {
			if asn, ok := w.IP2AS.Lookup(h.IP); !ok || asn != w.VictimASes[h.VictimAS].ASN {
				t.Fatalf("seed %d: host attribution broken", seed)
			}
		}
	}
}

func TestRunAcrossSeedsSanity(t *testing.T) {
	// Short runs across seeds: the engine must stay consistent (no control
	// errors, plausible drop shares).
	cfg := TestConfig()
	cfg.Days = 8
	cfg.EventsTotal = 120
	cfg.UniqueVictims = 60
	cfg.Members = 40
	cfg.RTBHUsers = 8
	cfg.VictimOriginASes = 10
	cfg.RemoteOriginASes = 80
	for seed := uint64(3); seed < 6; seed++ {
		cfg.Seed = seed
		w, err := Plan(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var n int64
		res, err := Run(w, Sinks{Flow: func(b *ipfix.RecordBatch) error { n += int64(b.Len()); return nil }})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n == 0 || res.Announcements == 0 {
			t.Fatalf("seed %d: empty run", seed)
		}
		st := res.FabricStats
		if st.PacketsDropped <= 0 || st.PacketsDropped >= st.PacketsIn {
			t.Fatalf("seed %d: implausible drops %+v", seed, st)
		}
	}
}
