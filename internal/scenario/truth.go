package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/fabric"
	"repro/internal/ipfix"
)

// MemberInfo is the dataset-side description of one IXP member: the
// mapping from router MAC to AS that the paper obtains from the IXP's
// interface database.
type MemberInfo struct {
	ASN  uint32    `json:"asn"`
	IP   string    `json:"ip"`
	MAC  ipfix.MAC `json:"mac"`
	Type string    `json:"type"`
}

// TruthEvent is the ground-truth record of one planned RTBH event.
type TruthEvent struct {
	ID         int       `json:"id"`
	Class      string    `json:"class"`
	Prefix     string    `json:"prefix"`
	Peer       uint32    `json:"peer"`
	OriginAS   uint32    `json:"origin_as"`
	HostKind   string    `json:"host_kind,omitempty"`
	Start      time.Time `json:"start"`
	End        time.Time `json:"end,omitempty"` // zero = active at period end
	Episodes   int       `json:"episodes"`
	Attack     bool      `json:"attack"`
	AmpPorts   []uint16  `json:"amp_ports,omitempty"`
	Filterable bool      `json:"filterable,omitempty"`
	Targeted   bool      `json:"targeted,omitempty"`
	Bilateral  bool      `json:"bilateral,omitempty"`
	// Mitigation describes how the event mitigates: "rtbh", "flowspec"
	// (fine-grained only), or "escalate" (RTBH handed over to FlowSpec).
	Mitigation string `json:"mitigation,omitempty"`
	// FlowSpecStart/End bound the FlowSpec window for flowspec/escalate
	// events (zero End = active at period end).
	FlowSpecStart time.Time `json:"flowspec_start,omitempty"`
	FlowSpecEnd   time.Time `json:"flowspec_end,omitempty"`
}

// GroundTruth is the machine-readable summary of a planned world used to
// validate what the analysis pipeline recovers.
type GroundTruth struct {
	Seed          uint64         `json:"seed"`
	Start         time.Time      `json:"start"`
	Days          int            `json:"days"`
	SamplingRate  int64          `json:"sampling_rate"`
	ClockOffsetMS int64          `json:"clock_offset_ms"`
	Members       []MemberInfo   `json:"members"`
	RSASN         uint16         `json:"rs_asn"`
	Events        []TruthEvent   `json:"events"`
	ClassCounts   map[string]int `json:"class_counts"`
	HostKinds     map[string]int `json:"host_kinds"`
}

// Truth builds the ground-truth summary of a planned world.
func Truth(w *World) *GroundTruth {
	gt := &GroundTruth{
		Seed:          w.Cfg.Seed,
		Start:         w.Cfg.Start,
		Days:          w.Cfg.Days,
		SamplingRate:  w.Cfg.SamplingRate,
		ClockOffsetMS: w.Cfg.ClockOffset.Milliseconds(),
		RSASN:         w.RSASN,
		ClassCounts:   make(map[string]int),
		HostKinds:     make(map[string]int),
	}
	for _, m := range w.Members {
		gt.Members = append(gt.Members, MemberInfo{
			ASN:  m.ASN,
			IP:   formatAddr(m.IP),
			MAC:  fabric.MemberMAC(m.ASN),
			Type: string(m.PDBType),
		})
	}
	for _, h := range w.Hosts {
		gt.HostKinds[h.Kind.String()]++
	}
	for _, e := range w.Events {
		te := TruthEvent{
			ID:        e.ID,
			Class:     e.Class.String(),
			Prefix:    e.Prefix.String(),
			Peer:      e.Peer,
			OriginAS:  e.OriginAS,
			Start:     e.Start(),
			Episodes:  len(e.Episodes),
			Attack:    e.Attack != nil,
			Targeted:  len(e.TargetedExclude) > 0,
			Bilateral: e.Bilateral,
		}
		if end, ok := e.End(); ok {
			te.End = end
		}
		if e.Host >= 0 {
			te.HostKind = w.Hosts[e.Host].Kind.String()
		}
		if e.Attack != nil {
			for _, p := range e.Attack.Protocols {
				te.AmpPorts = append(te.AmpPorts, p.Port)
			}
			te.Filterable = len(e.Attack.Protocols) > 0 && !e.Attack.ExtraRandomPort && !e.Attack.SYNFlood
			te.Mitigation = "rtbh"
		}
		if e.FlowSpec != nil {
			te.Mitigation = "escalate"
			if len(e.Episodes) == 0 {
				te.Mitigation = "flowspec"
			}
			te.FlowSpecStart = e.FlowSpec.Start
			te.FlowSpecEnd = e.FlowSpec.End
		}
		gt.ClassCounts[te.Class]++
		gt.Events = append(gt.Events, te)
	}
	return gt
}

// WriteJSON serializes the ground truth.
func (gt *GroundTruth) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(gt)
}

// ReadTruthJSON parses a ground truth written by WriteJSON.
func ReadTruthJSON(r io.Reader) (*GroundTruth, error) {
	var gt GroundTruth
	if err := json.NewDecoder(r).Decode(&gt); err != nil {
		return nil, fmt.Errorf("scenario: ground truth: %w", err)
	}
	return &gt, nil
}

func formatAddr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", a>>24, a>>16&0xff, a>>8&0xff, a&0xff)
}
