package scenario

import (
	"time"

	"repro/internal/bgp"
	"repro/internal/fabric"
	"repro/internal/ip2as"
	"repro/internal/netgen"
	"repro/internal/peeringdb"
	"repro/internal/routeserver"
)

// EventClass is the ground-truth use case of a planned RTBH event,
// following the paper's taxonomy (Table 1 plus the observed zombie class).
type EventClass int

// Ground-truth event classes.
const (
	// ClassDDoS is infrastructure protection: the blackhole reacts to a
	// volumetric attack.
	ClassDDoS EventClass = iota
	// ClassSteady is a blackhole on a host with ongoing legitimate
	// traffic but no attack visible at the IXP (mitigation of attacks
	// seen elsewhere, precaution, or unexplained operator action).
	ClassSteady
	// ClassQuiet is a short- or mid-lived blackhole on a prefix with
	// essentially no traffic at the vantage point.
	ClassQuiet
	// ClassZombie is a blackhole once triggered and then forgotten:
	// announced once, active for weeks to the end of the period.
	ClassZombie
	// ClassSquatting is prefix-squatting protection: an unused,
	// less-specific prefix announced as a blackhole for months.
	ClassSquatting
)

// String implements fmt.Stringer.
func (c EventClass) String() string {
	switch c {
	case ClassDDoS:
		return "ddos"
	case ClassSteady:
		return "steady"
	case ClassQuiet:
		return "quiet"
	case ClassZombie:
		return "zombie"
	case ClassSquatting:
		return "squatting"
	default:
		return "invalid"
	}
}

// HostKind describes the behavioural profile of a blackholed host.
type HostKind int

// Host kinds.
const (
	HostQuiet HostKind = iota
	HostServer
	HostClient
	HostGamingClient
)

// String implements fmt.Stringer.
func (k HostKind) String() string {
	switch k {
	case HostQuiet:
		return "quiet"
	case HostServer:
		return "server"
	case HostClient:
		return "client"
	case HostGamingClient:
		return "gaming-client"
	default:
		return "invalid"
	}
}

// Member is one AS connected to the peering platform.
type Member struct {
	ASN    uint32
	IP     uint32
	Policy routeserver.Policy
	// TrafficWeight is the member's share of handover traffic
	// (heavy-tailed, as at real IXPs).
	TrafficWeight float64
	// PDBType is the member's PeeringDB organization type.
	PDBType peeringdb.OrgType
}

// VictimAS is an origin AS that owns blackholed prefixes. Peer is the IXP
// member that announces its blackholes (the AS itself when it peers
// directly, otherwise its transit).
type VictimAS struct {
	ASN     uint32
	Peer    uint32
	Block   bgp.Prefix
	PDBType peeringdb.OrgType
}

// RemoteAS is a non-victim origin AS routed through the IXP; amplifier
// pools are drawn from these.
type RemoteAS struct {
	ASN      uint32
	Handover uint32
	Block    bgp.Prefix
}

// Host is one blackholed address with its behavioural profile.
type Host struct {
	IP       uint32
	VictimAS int // index into World.VictimASes
	Kind     HostKind
	// ActiveDays marks the days (0-based) on which the host exchanges
	// baseline traffic.
	ActiveDays []bool
	// Server and Client are the traffic profiles; exactly one is non-nil
	// for non-quiet hosts.
	Server *netgen.ServerProfile
	Client *netgen.ClientProfile
	// ScanDailyPackets is the background-radiation volume toward the
	// host per day (0 for none).
	ScanDailyPackets int64
}

// Episode is one announce..withdraw cycle of an RTBH event. A zero
// Withdraw means the route stays active to the end of the period.
type Episode struct {
	Announce time.Time
	Withdraw time.Time
}

// Attack is the ground-truth description of a DDoS attack driving a
// ClassDDoS event.
type Attack struct {
	Start    time.Time
	Duration time.Duration
	PPS      float64
	// Protocols are the amplification vectors in use (empty for direct
	// floods).
	Protocols []netgen.AmpProtocol
	// ExtraRandomPort adds an unfilterable random-port UDP component.
	ExtraRandomPort bool
	// SYNFlood marks a direct TCP SYN flood component.
	SYNFlood bool
	// OriginASes indexes World.RemoteASes for the reflector pools.
	OriginASes []int
}

// End returns when the attack traffic stops.
func (a *Attack) End() time.Time { return a.Start.Add(a.Duration) }

// FlowSpecWindow is the fine-grained mitigation phase of an event: the
// victim's FlowSpec discard rule is announced at Start and withdrawn at
// End (zero End = active to the end of the period).
type FlowSpecWindow struct {
	Start time.Time
	End   time.Time
	Rule  *bgp.FlowRule
}

// Event is one planned mitigation event with ground truth attached.
// Episodes are the RTBH announce/withdraw cycles; FlowSpec, when
// non-nil, is the fine-grained phase a non-default MitigationPolicy
// planned. A FlowSpec-only event has no episodes at all.
type Event struct {
	ID       int
	Class    EventClass
	Prefix   bgp.Prefix
	Peer     uint32 // announcing member
	OriginAS uint32 // AS_PATH origin
	Host     int    // index into World.Hosts, -1 for squatting prefixes
	Attack   *Attack
	Episodes []Episode
	FlowSpec *FlowSpecWindow
	// TargetedExclude, when non-empty, lists peers excluded from the
	// announcement via communities (targeted blackholing).
	TargetedExclude []uint32
	// Bilateral marks events additionally enforced by private
	// agreements outside the route server.
	Bilateral bool
}

// Start returns the first mitigation action (RTBH announcement, or the
// FlowSpec rule announcement for FlowSpec-only events).
func (e *Event) Start() time.Time {
	if len(e.Episodes) == 0 && e.FlowSpec != nil {
		return e.FlowSpec.Start
	}
	return e.Episodes[0].Announce
}

// End returns when the last mitigation state is removed; ok is false if
// any of it stays active to the end of the measurement period.
func (e *Event) End() (time.Time, bool) {
	var end time.Time
	if len(e.Episodes) > 0 {
		last := e.Episodes[len(e.Episodes)-1]
		if last.Withdraw.IsZero() {
			return time.Time{}, false
		}
		end = last.Withdraw
	}
	if e.FlowSpec != nil {
		if e.FlowSpec.End.IsZero() {
			return time.Time{}, false
		}
		if e.FlowSpec.End.After(end) {
			end = e.FlowSpec.End
		}
	}
	return end, true
}

// MitigationPhase returns the mitigation state covering instant t. The
// FlowSpec window wins where it overlaps an RTBH episode (escalation
// withdraws the blackhole at the handover, so overlap is momentary).
func (e *Event) MitigationPhase(t time.Time) fabric.Phase {
	if fs := e.FlowSpec; fs != nil && !t.Before(fs.Start) && (fs.End.IsZero() || t.Before(fs.End)) {
		return fabric.PhaseFlowSpec
	}
	for _, ep := range e.Episodes {
		if t.Before(ep.Announce) {
			break // episodes are chronological
		}
		if ep.Withdraw.IsZero() || t.Before(ep.Withdraw) {
			return fabric.PhaseRTBH
		}
	}
	return fabric.PhaseNone
}

// World is the fully planned simulation input.
type World struct {
	Cfg Config

	RSASN uint16
	RSIP  uint32

	Members    []Member
	memberIdx  map[uint32]int
	VictimASes []VictimAS
	RemoteASes []RemoteAS
	// ConeByMember lists, per handover member ASN, the indices of the
	// remote origin ASes routed through it (its customer cone at the
	// IXP). Attack reflector pools cluster within a few cones.
	ConeByMember map[uint32][]int
	Hosts        []*Host
	Events       []*Event
	PDB          *peeringdb.Registry
	IP2AS        *ip2as.Table
	RemotePool   *netgen.RemotePool
	SquatASes    int
	SquatPrefix  int
}

// MemberByASN returns the member with the given ASN.
func (w *World) MemberByASN(asn uint32) (*Member, bool) {
	i, ok := w.memberIdx[asn]
	if !ok {
		return nil, false
	}
	return &w.Members[i], true
}
