package serve

import (
	"sync"
	"time"

	rtbh "repro"
	"repro/internal/obs"
)

// snapshotCache is the copy-on-snapshot TTL cache between the HTTP
// handlers and the online analyzer. A cached entry is one immutable
// *rtbh.Report — OnlineAnalyzer.Snapshot already clones the operator
// state before composing, so sharing the pointer across any number of
// concurrent readers is safe and costs nothing per request.
//
// Freshness is per query: a request carrying maxAge=d accepts any entry
// at most d old. Requests that find the entry stale take a new snapshot;
// concurrent stale readers coalesce onto one in-flight snapshot
// (single-flight), so a thundering herd never multiplies analyzer work.
// maxAge=0 opts out of coalescing entirely: the caller demands a
// snapshot taken after its request arrived.
type snapshotCache struct {
	clock   func() time.Time
	refresh func() (*rtbh.Report, error)

	mu       sync.Mutex
	rep      *rtbh.Report
	taken    time.Time
	err      error         // outcome of the last refresh, for waiters
	inflight chan struct{} // non-nil while a refresh is running

	hits, misses *obs.Counter
}

func newSnapshotCache(clock func() time.Time, refresh func() (*rtbh.Report, error)) *snapshotCache {
	return &snapshotCache{
		clock:   clock,
		refresh: refresh,
		hits:    &obs.Counter{},
		misses:  &obs.Counter{},
	}
}

// get returns a report no older than maxAge, plus the time it was taken.
func (c *snapshotCache) get(maxAge time.Duration) (*rtbh.Report, time.Time, error) {
	if maxAge <= 0 {
		// A strictly fresh snapshot, taken for this caller alone.
		c.misses.Add(1)
		rep, err := c.refresh()
		if err != nil {
			return nil, time.Time{}, err
		}
		taken := c.clock()
		c.mu.Lock()
		if taken.After(c.taken) {
			c.rep, c.taken = rep, taken
		}
		c.mu.Unlock()
		return rep, taken, nil
	}

	for {
		c.mu.Lock()
		if c.rep != nil && c.clock().Sub(c.taken) <= maxAge {
			rep, taken := c.rep, c.taken
			c.mu.Unlock()
			c.hits.Add(1)
			return rep, taken, nil
		}
		if wait := c.inflight; wait != nil {
			// Someone is already snapshotting; adopt their result. The
			// adopted entry may be up to one snapshot duration older than
			// a strict TTL would allow — bounded staleness in exchange
			// for never stacking snapshots (see DESIGN.md).
			c.mu.Unlock()
			<-wait
			c.mu.Lock()
			rep, taken, err := c.rep, c.taken, c.err
			c.mu.Unlock()
			if err != nil {
				return nil, time.Time{}, err
			}
			if rep != nil {
				c.hits.Add(1)
				return rep, taken, nil
			}
			continue
		}
		done := make(chan struct{})
		c.inflight = done
		c.mu.Unlock()

		c.misses.Add(1)
		rep, err := c.refresh()
		taken := c.clock()

		c.mu.Lock()
		if err == nil {
			c.rep, c.taken = rep, taken
		}
		c.err = err
		c.inflight = nil
		c.mu.Unlock()
		close(done)
		if err != nil {
			return nil, time.Time{}, err
		}
		return rep, taken, nil
	}
}
