package serve

import (
	"sync"
	"time"

	rtbh "repro"
)

// histEntry is one retained point of the rolling time series: a full
// report snapshot and the instant it was taken.
type histEntry struct {
	at  time.Time
	rep *rtbh.Report
}

// historyRing retains the most recent depth snapshots in capture order.
// With the default 5-minute cadence and a depth of 288 it holds a day of
// history. Entries are immutable once appended; lookups serve clients'
// ?at= and ?since= queries.
type historyRing struct {
	mu      sync.Mutex
	depth   int
	entries []histEntry // ascending capture time
}

func newHistoryRing(depth int) *historyRing {
	return &historyRing{depth: depth}
}

// add appends a snapshot, evicting the oldest entry past capacity.
// Out-of-order captures (a clock that did not advance) are rejected so
// the series stays strictly increasing.
func (r *historyRing) add(at time.Time, rep *rtbh.Report) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n := len(r.entries); n > 0 && !at.After(r.entries[n-1].at) {
		return false
	}
	r.entries = append(r.entries, histEntry{at: at, rep: rep})
	if len(r.entries) > r.depth {
		r.entries = append(r.entries[:0], r.entries[len(r.entries)-r.depth:]...)
	}
	return true
}

// len returns the number of retained entries.
func (r *historyRing) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// bounds returns the oldest and newest capture times (zero when empty).
func (r *historyRing) bounds() (oldest, newest time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		return time.Time{}, time.Time{}
	}
	return r.entries[0].at, r.entries[len(r.entries)-1].at
}

// at returns the newest entry captured at or before t, which is how
// clients read history ("the state as of t"). ok is false when t
// precedes the retained window.
func (r *historyRing) at(t time.Time) (histEntry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.entries) - 1; i >= 0; i-- {
		if !r.entries[i].at.After(t) {
			return r.entries[i], true
		}
	}
	return histEntry{}, false
}

// since returns every entry captured at or after t, oldest first.
func (r *historyRing) since(t time.Time) []histEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, e := range r.entries {
		if !e.at.Before(t) {
			out := make([]histEntry, len(r.entries)-i)
			copy(out, r.entries[i:])
			return out
		}
	}
	return nil
}

// all returns every retained entry, oldest first.
func (r *historyRing) all() []histEntry {
	return r.since(time.Time{})
}
