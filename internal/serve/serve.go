// Package serve is the looking-glass layer over a live analysis: an
// HTTP+JSON API that lets many concurrent clients query the state of an
// rtbh.OnlineAnalyzer — per-event efficacy, collateral damage, active
// blackhole counts, victim and use-case breakdowns, federation leakage
// — while the measurement streams are still being ingested.
//
// Requests never touch the ingest path. Every data endpoint is a view
// of one immutable report produced by the analyzer's copy-on-snapshot
// Snapshot; a TTL cache (per-query ?maxAge=, default Config.MaxAge)
// bounds how often a snapshot is actually taken, and a rolling ring of
// periodic snapshots serves history and delta queries (?at=, ?since=)
// without re-analyzing anything. See DESIGN.md, "Serving layer".
package serve

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	rtbh "repro"
	"repro/internal/analysis/mitigation"
	"repro/internal/bgp"
	"repro/internal/detect"
	"repro/internal/obs"
)

// Defaults for Config zero values.
const (
	DefaultMaxAge          = 5 * time.Second
	DefaultHistoryInterval = 5 * time.Minute
	DefaultHistoryDepth    = 288 // a day at the 5-minute cadence
)

// Source is the slice of rtbh.OnlineAnalyzer the server reads. Snapshot
// must be safe to call concurrently with ingest and must return a report
// the caller may retain and share (the analyzer's copy-on-snapshot
// contract guarantees both).
type Source interface {
	Snapshot(opts rtbh.Options) (*rtbh.Report, error)
	Counts() (updates int, flows int64)
	Watermark() time.Time
	Period() (start, end time.Time)
}

// Config parameterizes a Server.
type Config struct {
	// Source is the live analyzer to serve. Required.
	Source Source
	// Options are the analysis options every snapshot is composed with
	// (Options.Delta must match the analyzer's construction-time delta).
	Options rtbh.Options
	// MaxAge is the default snapshot TTL when a request does not carry
	// ?maxAge=. Zero selects DefaultMaxAge; a negative value disables
	// default caching (every request without ?maxAge= snapshots fresh).
	// Requests opt out of caching per query with ?maxAge=0.
	MaxAge time.Duration
	// HistoryInterval is the ring-store capture cadence (RunHistory);
	// zero selects DefaultHistoryInterval.
	HistoryInterval time.Duration
	// HistoryDepth is how many periodic snapshots the ring retains; zero
	// selects DefaultHistoryDepth.
	HistoryDepth int
	// Clock overrides time.Now, for tests that need deterministic
	// taken-at stamps and TTL expiry.
	Clock func() time.Time
	// Info is static run metadata echoed by /api/health (scale, seed,
	// chaos profile, ...).
	Info map[string]string
	// Federation, when non-nil, backs /api/federation: it returns the
	// merged cross-exchange report. When nil the endpoint answers 404.
	Federation func() (*rtbh.FederatedReport, error)
	// Detections, when non-nil, backs /api/detections: it returns the
	// closed-loop detector's current status (rtbh.LiveRun.Detector's
	// Status). When nil the endpoint answers 404.
	Detections func() *detect.Status
	// Metrics, when non-nil, receives the serving-layer metrics
	// ("serve.*": per-endpoint request counters, a latency histogram,
	// cache hit/miss counters, a history-size gauge).
	Metrics *obs.Registry
}

// serveMetrics is the optional obs instrumentation.
type serveMetrics struct {
	requests map[string]*obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// Server is the looking-glass HTTP server. Construct with New, mount
// Handler on any mux or call Start to listen.
type Server struct {
	cfg     Config
	clock   func() time.Time
	cache   *snapshotCache
	ring    *historyRing
	mux     *http.ServeMux
	started time.Time
	m       *serveMetrics

	srv *http.Server
	ln  net.Listener
}

// endpointNames lists the API surface, in the order health reports it.
var endpointNames = []string{
	"health", "summary", "events", "active", "collateral",
	"usecases", "victims", "mitigation", "federation", "detections",
	"history",
}

// New builds a server over cfg.Source. It registers metrics when
// cfg.Metrics is set and returns an error on a missing source.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("serve: Config.Source is required")
	}
	if cfg.MaxAge == 0 {
		cfg.MaxAge = DefaultMaxAge
	}
	if cfg.HistoryInterval <= 0 {
		cfg.HistoryInterval = DefaultHistoryInterval
	}
	if cfg.HistoryDepth <= 0 {
		cfg.HistoryDepth = DefaultHistoryDepth
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	s := &Server{
		cfg:     cfg,
		clock:   clock,
		ring:    newHistoryRing(cfg.HistoryDepth),
		started: clock(),
	}
	s.cache = newSnapshotCache(clock, func() (*rtbh.Report, error) {
		return cfg.Source.Snapshot(cfg.Options)
	})
	if reg := cfg.Metrics; reg != nil {
		s.m = &serveMetrics{
			requests: make(map[string]*obs.Counter, len(endpointNames)),
			errors:   reg.Counter("serve.errors"),
			latency: reg.Histogram("serve.latency_ms",
				1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000),
		}
		for _, name := range endpointNames {
			s.m.requests[name] = reg.Counter("serve.requests." + name)
		}
		reg.RegisterCounter("serve.cache_hits", s.cache.hits)
		reg.RegisterCounter("serve.cache_misses", s.cache.misses)
		reg.GaugeFunc("serve.history_entries", func() int64 { return int64(s.ring.len()) })
	}

	s.mux = http.NewServeMux()
	s.mux.Handle("/api/health", s.handle("health", s.handleHealth))
	s.mux.Handle("/api/summary", s.handle("summary", s.handleSummary))
	s.mux.Handle("/api/events", s.handle("events", s.handleEvents))
	s.mux.Handle("/api/active", s.handle("active", s.handleActive))
	s.mux.Handle("/api/collateral", s.handle("collateral", s.handleCollateral))
	s.mux.Handle("/api/usecases", s.handle("usecases", s.handleUseCases))
	s.mux.Handle("/api/victims", s.handle("victims", s.handleVictims))
	s.mux.Handle("/api/mitigation", s.handle("mitigation", s.handleMitigation))
	s.mux.Handle("/api/federation", s.handle("federation", s.handleFederation))
	s.mux.Handle("/api/detections", s.handle("detections", s.handleDetections))
	s.mux.Handle("/api/history", s.handle("history", s.handleHistory))
	s.mux.Handle("/", s.handle("health", func(r *http.Request) (any, *httpError) {
		return nil, notFound("unknown path %q (endpoints: /api/{%s})",
			r.URL.Path, joinNames(endpointNames))
	}))
	return s, nil
}

// Handler returns the server's HTTP handler, for mounting on an
// existing mux or an httptest server.
func (s *Server) Handler() http.Handler { return s.mux }

// Start binds addr and serves in a background goroutine, returning the
// bound address (useful with port 0). Close stops the listener.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: binding %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr(), nil
}

// Close stops a Start-ed listener. Safe to call when never started.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// CaptureHistory takes a fresh snapshot now and appends it to the ring
// store. RunHistory calls it on a ticker; tests call it directly.
func (s *Server) CaptureHistory() error {
	rep, taken, err := s.cache.get(0)
	if err != nil {
		return err
	}
	s.ring.add(taken, rep)
	return nil
}

// RunHistory captures a ring snapshot every Config.HistoryInterval until
// done is closed (or the context-shaped channel is cancelled). Run it in
// its own goroutine; capture errors are skipped — the next tick retries.
func (s *Server) RunHistory(done <-chan struct{}) {
	tick := time.NewTicker(s.cfg.HistoryInterval)
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
			_ = s.CaptureHistory()
		}
	}
}

// --- request plumbing ---

// httpError is a handler failure with a status code; the wrapper renders
// it as {"error": ...} JSON.
type httpError struct {
	status int
	msg    string
}

func badRequest(format string, args ...any) *httpError {
	return &httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) *httpError {
	return &httpError{http.StatusNotFound, fmt.Sprintf(format, args...)}
}

func internalErr(err error) *httpError {
	return &httpError{http.StatusInternalServerError, err.Error()}
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// handle wraps an endpoint: method check, metrics, JSON rendering.
func (s *Server) handle(name string, fn func(r *http.Request) (any, *httpError)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if s.m != nil {
			if c := s.m.requests[name]; c != nil {
				c.Add(1)
			}
		}
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			s.writeError(w, &httpError{http.StatusMethodNotAllowed,
				fmt.Sprintf("method %s not allowed (GET only)", r.Method)})
			return
		}
		v, herr := fn(r)
		if herr != nil {
			s.writeError(w, herr)
		} else {
			s.writeJSON(w, http.StatusOK, v)
		}
		if s.m != nil {
			s.m.latency.Observe(time.Since(start).Milliseconds())
		}
	})
}

func (s *Server) writeError(w http.ResponseWriter, herr *httpError) {
	if s.m != nil {
		s.m.errors.Add(1)
	}
	s.writeJSON(w, herr.status, map[string]string{"error": herr.msg})
}

// writeJSON renders v as indented JSON with a trailing newline. The
// encoding is stable (encoding/json sorts map keys), so golden fixtures
// byte-compare.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(b)
}

// snapshotFor resolves which report a data endpoint serves: ?at= reads
// the ring store ("state as of at"), otherwise the TTL cache with the
// request's ?maxAge= (default Config.MaxAge).
func (s *Server) snapshotFor(r *http.Request) (*rtbh.Report, time.Time, *httpError) {
	q := r.URL.Query()
	if atStr := q.Get("at"); atStr != "" {
		t, err := time.Parse(time.RFC3339Nano, atStr)
		if err != nil {
			return nil, time.Time{}, badRequest("invalid at=%q: %v (want RFC 3339)", atStr, err)
		}
		e, ok := s.ring.at(t)
		if !ok {
			oldest, newest := s.ring.bounds()
			if oldest.IsZero() {
				return nil, time.Time{}, notFound("no history retained yet")
			}
			return nil, time.Time{}, notFound("no snapshot at or before %s (history covers %s..%s)",
				t.UTC().Format(time.RFC3339Nano), oldest.UTC().Format(time.RFC3339Nano),
				newest.UTC().Format(time.RFC3339Nano))
		}
		return e.rep, e.at, nil
	}
	maxAge := s.cfg.MaxAge
	if v := q.Get("maxAge"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, time.Time{}, badRequest("invalid maxAge=%q: %v (want a Go duration, e.g. 5s)", v, err)
		}
		if d < 0 {
			return nil, time.Time{}, badRequest("maxAge must be >= 0, got %v", d)
		}
		maxAge = d
	}
	rep, taken, err := s.cache.get(maxAge)
	if err != nil {
		return nil, time.Time{}, internalErr(err)
	}
	return rep, taken, nil
}

// --- endpoint views ---

// HealthView is /api/health: liveness plus enough run context to tell
// which world and stream position the server is looking at. It never
// takes a snapshot, so it answers even while a first snapshot is slow.
type HealthView struct {
	Status      string            `json:"status"`
	Now         time.Time         `json:"now"`
	UptimeMS    int64             `json:"uptime_ms"`
	PeriodStart time.Time         `json:"period_start"`
	PeriodEnd   time.Time         `json:"period_end"`
	Watermark   time.Time         `json:"watermark"`
	Updates     int               `json:"updates"`
	Flows       int64             `json:"flows"`
	Federated   bool              `json:"federated"`
	History     HistoryStatusView `json:"history"`
	Info        map[string]string `json:"info,omitempty"`
	Endpoints   []string          `json:"endpoints"`
}

// HistoryStatusView summarizes the ring store.
type HistoryStatusView struct {
	Entries    int       `json:"entries"`
	Depth      int       `json:"depth"`
	IntervalMS int64     `json:"interval_ms"`
	Oldest     time.Time `json:"oldest,omitempty"`
	Newest     time.Time `json:"newest,omitempty"`
}

func (s *Server) handleHealth(*http.Request) (any, *httpError) {
	now := s.clock()
	updates, flows := s.cfg.Source.Counts()
	start, end := s.cfg.Source.Period()
	oldest, newest := s.ring.bounds()
	return &HealthView{
		Status:      "ok",
		Now:         now.UTC(),
		UptimeMS:    now.Sub(s.started).Milliseconds(),
		PeriodStart: start.UTC(),
		PeriodEnd:   end.UTC(),
		Watermark:   s.cfg.Source.Watermark().UTC(),
		Updates:     updates,
		Flows:       flows,
		Federated:   s.cfg.Federation != nil,
		History: HistoryStatusView{
			Entries:    s.ring.len(),
			Depth:      s.cfg.HistoryDepth,
			IntervalMS: s.cfg.HistoryInterval.Milliseconds(),
			Oldest:     oldest.UTC(),
			Newest:     newest.UTC(),
		},
		Info:      s.cfg.Info,
		Endpoints: endpointNames,
	}, nil
}

// SummaryView is /api/summary: the report's cleaning/attribution
// counters and headline drop rates.
type SummaryView struct {
	TakenAt           time.Time `json:"taken_at"`
	TotalRecords      int64     `json:"total_records"`
	InternalRecords   int64     `json:"internal_records"`
	AttributedRecords int64     `json:"attributed_records"`
	DroppedRecords    int64     `json:"dropped_records"`
	Events            int       `json:"events"`
	EventsWithData    int       `json:"events_with_data"`
	AvgDropRatePkts   float64   `json:"avg_drop_rate_pkts"`
	AvgDropRateBytes  float64   `json:"avg_drop_rate_bytes"`
}

func (s *Server) handleSummary(r *http.Request) (any, *httpError) {
	rep, taken, herr := s.snapshotFor(r)
	if herr != nil {
		return nil, herr
	}
	return &SummaryView{
		TakenAt:           taken.UTC(),
		TotalRecords:      rep.TotalRecords,
		InternalRecords:   rep.InternalRecords,
		AttributedRecords: rep.AttributedRecords,
		DroppedRecords:    rep.DroppedRecords,
		Events:            len(rep.Events),
		EventsWithData:    rep.EventsWithData,
		AvgDropRatePkts:   rep.Fig5AvgPkts,
		AvgDropRateBytes:  rep.Fig5AvgBytes,
	}, nil
}

// EfficacyView is one event's drop tally while its blackhole was active.
type EfficacyView struct {
	DroppedPkts    int64   `json:"dropped_pkts"`
	ForwardedPkts  int64   `json:"forwarded_pkts"`
	DroppedBytes   int64   `json:"dropped_bytes"`
	ForwardedBytes int64   `json:"forwarded_bytes"`
	DropRatePkts   float64 `json:"drop_rate_pkts"`
	DropRateBytes  float64 `json:"drop_rate_bytes"`
}

// EventView is one merged RTBH event joined with its efficacy tally,
// anomaly verdict and use-case class.
type EventView struct {
	ID                 int           `json:"id"`
	Prefix             string        `json:"prefix"`
	PeerAS             uint32        `json:"peer_as"`
	OriginAS           uint32        `json:"origin_as"`
	Start              time.Time     `json:"start"`
	End                time.Time     `json:"end"`
	Open               bool          `json:"open"`
	Episodes           int           `json:"episodes"`
	Announcements      int           `json:"announcements"`
	Class              string        `json:"class"`
	AnomalyWithin10Min bool          `json:"anomaly_within_10min"`
	Efficacy           *EfficacyView `json:"efficacy,omitempty"`
}

// EventsView is /api/events.
type EventsView struct {
	TakenAt time.Time   `json:"taken_at"`
	Count   int         `json:"count"`
	Events  []EventView `json:"events"`
}

func (s *Server) handleEvents(r *http.Request) (any, *httpError) {
	rep, taken, herr := s.snapshotFor(r)
	if herr != nil {
		return nil, herr
	}
	_, end := s.cfg.Source.Period()

	drops := make(map[int]*rtbh.EventDropStat, len(rep.EventDrops))
	for i := range rep.EventDrops {
		drops[rep.EventDrops[i].ID] = &rep.EventDrops[i]
	}
	classes := make(map[int]string)
	if rep.Fig19 != nil {
		for _, ec := range rep.Fig19.PerEvent {
			classes[ec.EventID] = ec.Class.String()
		}
	}
	anomalies := make(map[int]bool, len(rep.Verdicts))
	for i := range rep.Verdicts {
		anomalies[rep.Verdicts[i].EventID] = rep.Verdicts[i].Within10Min
	}

	out := &EventsView{TakenAt: taken.UTC(), Count: len(rep.Events)}
	out.Events = make([]EventView, 0, len(rep.Events))
	for _, e := range rep.Events {
		v := EventView{
			ID:                 e.ID,
			Prefix:             e.Prefix.String(),
			PeerAS:             e.Peer,
			OriginAS:           e.OriginAS,
			Start:              e.Start().UTC(),
			End:                e.End(end).UTC(),
			Open:               e.OpenEnded(),
			Episodes:           len(e.Episodes),
			Announcements:      e.Announcements,
			Class:              classes[e.ID],
			AnomalyWithin10Min: anomalies[e.ID],
		}
		if d := drops[e.ID]; d != nil {
			v.Efficacy = &EfficacyView{
				DroppedPkts:    d.DroppedPkts,
				ForwardedPkts:  d.ForwardedPkts,
				DroppedBytes:   d.DroppedBytes,
				ForwardedBytes: d.ForwardedBytes,
				DropRatePkts:   d.DropRatePkts(),
				DropRateBytes:  d.DropRateBytes(),
			}
		}
		out.Events = append(out.Events, v)
	}
	return out, nil
}

// ActiveView is /api/active: how many blackholes were active at the
// evaluation instant (?t=, default the control-plane watermark), plus
// the Fig 3 load summary over the whole snapshot.
type ActiveView struct {
	TakenAt     time.Time   `json:"taken_at"`
	At          time.Time   `json:"at"`
	Active      int         `json:"active"`
	ByPrefixLen map[int]int `json:"by_prefix_len"`
	EventIDs    []int       `json:"event_ids"`
	AvgActive   float64     `json:"avg_active"`
	MaxActive   int         `json:"max_active"`
	PeakMsgsMin int         `json:"peak_messages_per_minute"`
}

func (s *Server) handleActive(r *http.Request) (any, *httpError) {
	rep, taken, herr := s.snapshotFor(r)
	if herr != nil {
		return nil, herr
	}
	start, end := s.cfg.Source.Period()

	at := s.cfg.Source.Watermark()
	if tStr := r.URL.Query().Get("t"); tStr != "" {
		t, err := time.Parse(time.RFC3339Nano, tStr)
		if err != nil {
			return nil, badRequest("invalid t=%q: %v (want RFC 3339)", tStr, err)
		}
		at = t
	}
	if at.IsZero() {
		at = start
	}

	out := &ActiveView{
		TakenAt:     taken.UTC(),
		At:          at.UTC(),
		ByPrefixLen: make(map[int]int),
	}
	for _, e := range rep.Events {
		if !e.ActiveAt(at, end) {
			continue
		}
		out.Active++
		out.ByPrefixLen[int(e.Prefix.Len)]++
		out.EventIDs = append(out.EventIDs, e.ID)
	}
	sort.Ints(out.EventIDs)
	if rep.Fig3 != nil {
		out.AvgActive = rep.Fig3.AvgActive
		out.MaxActive = rep.Fig3.MaxActive
		out.PeakMsgsMin = rep.Fig3.MaxMessagesPerMinute
	}
	return out, nil
}

// CollateralView is /api/collateral: the Fig 18 damage distribution.
type CollateralView struct {
	TakenAt     time.Time `json:"taken_at"`
	Events      int       `json:"events"`
	MaxAllPkts  int64     `json:"max_all_pkts"`
	AllPkts     []int64   `json:"all_pkts"`
	DroppedPkts []int64   `json:"dropped_pkts"`
}

func (s *Server) handleCollateral(r *http.Request) (any, *httpError) {
	rep, taken, herr := s.snapshotFor(r)
	if herr != nil {
		return nil, herr
	}
	out := &CollateralView{TakenAt: taken.UTC()}
	if rep.Fig18 != nil {
		out.Events = rep.Fig18.Events
		out.MaxAllPkts = rep.Fig18.MaxAll
		out.AllPkts = rep.Fig18.AllPkts
		out.DroppedPkts = rep.Fig18.DroppedPkts
	}
	return out, nil
}

// UseCasesView is /api/usecases: the Fig 19 classification.
type UseCasesView struct {
	TakenAt             time.Time          `json:"taken_at"`
	Counts              map[string]int     `json:"counts"`
	Shares              map[string]float64 `json:"shares"`
	SquatPrefixes       int                `json:"squat_prefixes"`
	SquatASes           int                `json:"squat_ases"`
	LowTrafficHostShare float64            `json:"low_traffic_host_share"`
}

func (s *Server) handleUseCases(r *http.Request) (any, *httpError) {
	rep, taken, herr := s.snapshotFor(r)
	if herr != nil {
		return nil, herr
	}
	out := &UseCasesView{
		TakenAt: taken.UTC(),
		Counts:  make(map[string]int),
		Shares:  make(map[string]float64),
	}
	if rep.Fig19 != nil {
		for class, n := range rep.Fig19.Counts {
			out.Counts[class.String()] = n
		}
		for class, share := range rep.Fig19.Shares {
			out.Shares[class.String()] = share
		}
		out.SquatPrefixes = rep.Fig19.SquatPrefixes
		out.SquatASes = rep.Fig19.SquatASes
		out.LowTrafficHostShare = rep.Fig19.LowTrafficHostShare
	}
	return out, nil
}

// VictimView aggregates one blackholed prefix across its events.
type VictimView struct {
	Prefix        string         `json:"prefix"`
	OriginAS      uint32         `json:"origin_as"`
	Events        int            `json:"events"`
	FirstStart    time.Time      `json:"first_start"`
	LastEnd       time.Time      `json:"last_end"`
	DroppedPkts   int64          `json:"dropped_pkts"`
	ForwardedPkts int64          `json:"forwarded_pkts"`
	DropRatePkts  float64        `json:"drop_rate_pkts"`
	Classes       map[string]int `json:"classes"`
}

// VictimsView is /api/victims: the per-victim breakdown plus the Table 4
// host-population types.
type VictimsView struct {
	TakenAt      time.Time          `json:"taken_at"`
	Count        int                `json:"count"`
	Victims      []VictimView       `json:"victims"`
	HostProfiles int                `json:"host_profiles"`
	Clients      int                `json:"clients"`
	Servers      int                `json:"servers"`
	ClientTypes  map[string]float64 `json:"client_types"`
	ServerTypes  map[string]float64 `json:"server_types"`
}

func (s *Server) handleVictims(r *http.Request) (any, *httpError) {
	rep, taken, herr := s.snapshotFor(r)
	if herr != nil {
		return nil, herr
	}
	_, end := s.cfg.Source.Period()

	drops := make(map[int]*rtbh.EventDropStat, len(rep.EventDrops))
	for i := range rep.EventDrops {
		drops[rep.EventDrops[i].ID] = &rep.EventDrops[i]
	}
	classes := make(map[int]string)
	if rep.Fig19 != nil {
		for _, ec := range rep.Fig19.PerEvent {
			classes[ec.EventID] = ec.Class.String()
		}
	}

	byPrefix := make(map[string]*VictimView)
	for _, e := range rep.Events {
		key := e.Prefix.String()
		v := byPrefix[key]
		if v == nil {
			v = &VictimView{
				Prefix:     key,
				OriginAS:   e.OriginAS,
				FirstStart: e.Start().UTC(),
				LastEnd:    e.End(end).UTC(),
				Classes:    make(map[string]int),
			}
			byPrefix[key] = v
		}
		v.Events++
		if st := e.Start().UTC(); st.Before(v.FirstStart) {
			v.FirstStart = st
		}
		if en := e.End(end).UTC(); en.After(v.LastEnd) {
			v.LastEnd = en
		}
		v.Classes[classes[e.ID]]++
		if d := drops[e.ID]; d != nil {
			v.DroppedPkts += d.DroppedPkts
			v.ForwardedPkts += d.ForwardedPkts
		}
	}
	out := &VictimsView{
		TakenAt:     taken.UTC(),
		Count:       len(byPrefix),
		ClientTypes: make(map[string]float64),
		ServerTypes: make(map[string]float64),
	}
	for _, v := range byPrefix {
		if t := v.DroppedPkts + v.ForwardedPkts; t > 0 {
			v.DropRatePkts = float64(v.DroppedPkts) / float64(t)
		}
		out.Victims = append(out.Victims, *v)
	}
	sort.Slice(out.Victims, func(i, j int) bool {
		vi, vj := &out.Victims[i], &out.Victims[j]
		if vi.DroppedPkts != vj.DroppedPkts {
			return vi.DroppedPkts > vj.DroppedPkts
		}
		return vi.Prefix < vj.Prefix
	})
	out.HostProfiles = len(rep.Fig17)
	out.Clients = rep.Table4.Clients
	out.Servers = rep.Table4.Servers
	for typ, share := range rep.Table4.ClientTypes {
		out.ClientTypes[string(typ)] = share
	}
	for typ, share := range rep.Table4.ServerTypes {
		out.ServerTypes[string(typ)] = share
	}
	return out, nil
}

// MitigationCounterView is one dropped/forwarded traffic tally.
type MitigationCounterView struct {
	DroppedPkts    int64   `json:"dropped_pkts"`
	ForwardedPkts  int64   `json:"forwarded_pkts"`
	DroppedBytes   int64   `json:"dropped_bytes"`
	ForwardedBytes int64   `json:"forwarded_bytes"`
	DropRatePkts   float64 `json:"drop_rate_pkts"`
}

func mitCounterView(c *rtbh.MitigationCounter) MitigationCounterView {
	return MitigationCounterView{
		DroppedPkts:    c.DroppedPkts,
		ForwardedPkts:  c.ForwardedPkts,
		DroppedBytes:   c.DroppedBytes,
		ForwardedBytes: c.ForwardedBytes,
		DropRatePkts:   c.DropRatePkts(),
	}
}

// MitigationRowView is one Table 5 row: one mitigation type's aggregate
// outcome on attack and legitimate traffic.
type MitigationRowView struct {
	Type     string                `json:"type"`
	Prefixes int                   `json:"prefixes"`
	Attack   MitigationCounterView `json:"attack"`
	Legit    MitigationCounterView `json:"legit"`
}

// MitigationPrefixView is one victim prefix's per-type detail.
type MitigationPrefixView struct {
	Prefix         string                `json:"prefix"`
	RTBHAttack     MitigationCounterView `json:"rtbh_attack"`
	RTBHLegit      MitigationCounterView `json:"rtbh_legit"`
	FlowSpecAttack MitigationCounterView `json:"flowspec_attack"`
	FlowSpecLegit  MitigationCounterView `json:"flowspec_legit"`
}

// MitigationView is /api/mitigation: the reproduced Table 5 — RTBH vs
// FlowSpec, measured on the mitigated traffic.
type MitigationView struct {
	TakenAt  time.Time              `json:"taken_at"`
	Measured bool                   `json:"measured"`
	Rows     []MitigationRowView    `json:"rows"`
	Prefixes []MitigationPrefixView `json:"prefixes"`
}

func (s *Server) handleMitigation(r *http.Request) (any, *httpError) {
	rep, taken, herr := s.snapshotFor(r)
	if herr != nil {
		return nil, herr
	}
	out := &MitigationView{TakenAt: taken.UTC()}
	t5 := rep.Table5
	if t5 == nil {
		return out, nil
	}
	out.Measured = t5.Measured()
	for i := range t5.Rows {
		row := &t5.Rows[i]
		out.Rows = append(out.Rows, MitigationRowView{
			Type:     row.Phase.String(),
			Prefixes: row.Prefixes,
			Attack:   mitCounterView(&row.Attack),
			Legit:    mitCounterView(&row.Legit),
		})
	}
	for i := range t5.ByPrefix {
		ps := &t5.ByPrefix[i]
		out.Prefixes = append(out.Prefixes, MitigationPrefixView{
			Prefix:         ps.Prefix.String(),
			RTBHAttack:     mitCounterView(&ps.Attack[mitigation.PhaseRTBH]),
			RTBHLegit:      mitCounterView(&ps.Legit[mitigation.PhaseRTBH]),
			FlowSpecAttack: mitCounterView(&ps.Attack[mitigation.PhaseFlowSpec]),
			FlowSpecLegit:  mitCounterView(&ps.Legit[mitigation.PhaseFlowSpec]),
		})
	}
	return out, nil
}

// FederationIXPView is one exchange's column in a cross-event join.
type FederationIXPView struct {
	IXP           int   `json:"ixp"`
	DroppedPkts   int64 `json:"dropped_pkts"`
	ForwardedPkts int64 `json:"forwarded_pkts"`
	LocalRTBH     bool  `json:"local_rtbh"`
}

// FederationEventView is one leaked event.
type FederationEventView struct {
	EventID          int                 `json:"event_id"`
	Prefix           string              `json:"prefix"`
	PeerAS           uint32              `json:"peer_as"`
	ForeignDelivered float64             `json:"foreign_delivered"`
	IXPs             []FederationIXPView `json:"ixps"`
}

// FederationPerIXPView summarizes one exchange's standalone report.
type FederationPerIXPView struct {
	IXP               int   `json:"ixp"`
	ClockOffsetMS     int64 `json:"clock_offset_ms"`
	Events            int   `json:"events"`
	TotalRecords      int64 `json:"total_records"`
	AttributedRecords int64 `json:"attributed_records"`
}

// FederationView is /api/federation: the cross-exchange leakage join.
type FederationView struct {
	IXPs         int                    `json:"ixps"`
	LeakedEvents int                    `json:"leaked_events"`
	DroppedPkts  int64                  `json:"dropped_pkts"`
	ForeignPkts  int64                  `json:"foreign_pkts"`
	ForeignShare float64                `json:"foreign_share"`
	Events       []FederationEventView  `json:"events"`
	PerIXP       []FederationPerIXPView `json:"per_ixp"`
}

func (s *Server) handleFederation(*http.Request) (any, *httpError) {
	if s.cfg.Federation == nil {
		return nil, notFound("not federated: this server fronts a single exchange")
	}
	fr, err := s.cfg.Federation()
	if err != nil {
		return nil, internalErr(err)
	}
	out := &FederationView{IXPs: len(fr.PerIXP)}
	if fr.Cross != nil {
		out.LeakedEvents = fr.Cross.LeakedEvents
		out.DroppedPkts = fr.Cross.DroppedPkts
		out.ForeignPkts = fr.Cross.ForeignPkts
		out.ForeignShare = fr.Cross.ForeignShare
		for _, ec := range fr.Cross.Events {
			ev := FederationEventView{
				EventID:          ec.EventID,
				Prefix:           ec.Prefix.String(),
				PeerAS:           ec.Peer,
				ForeignDelivered: ec.ForeignDelivered,
			}
			for _, tr := range ec.IXPs {
				ev.IXPs = append(ev.IXPs, FederationIXPView{
					IXP:           tr.IXP,
					DroppedPkts:   tr.DroppedPkts,
					ForwardedPkts: tr.ForwardedPkts,
					LocalRTBH:     tr.LocalRTBH,
				})
			}
			out.Events = append(out.Events, ev)
		}
	}
	for _, v := range fr.PerIXP {
		out.PerIXP = append(out.PerIXP, FederationPerIXPView{
			IXP:               v.IXP,
			ClockOffsetMS:     v.ClockOffset.Milliseconds(),
			Events:            len(v.Report.Events),
			TotalRecords:      v.Report.TotalRecords,
			AttributedRecords: v.Report.AttributedRecords,
		})
	}
	return out, nil
}

// DetectionView is one closed-loop detection in /api/detections: the
// victim, the triggering window's estimated rate and attack vectors,
// and the mitigation lifecycle stamps (zero-valued stamps are omitted —
// a missing withdrawn_at means the blackhole is still up).
type DetectionView struct {
	ID         int             `json:"id"`
	Prefix     string          `json:"prefix"`
	DetectedAt time.Time       `json:"detected_at"`
	RatePPS    float64         `json:"rate_pps"`
	Vectors    []detect.Vector `json:"vectors,omitempty"`
	// AnnouncedAt is when the RTBH announcement entered the route server.
	AnnouncedAt *time.Time `json:"announced_at,omitempty"`
	// FirstDropAt is the first fabric drop at or after the announcement.
	FirstDropAt *time.Time `json:"first_drop_at,omitempty"`
	WithdrawnAt *time.Time `json:"withdrawn_at,omitempty"`
	Active      bool       `json:"active"`
}

// DetectionsView is /api/detections: the closed-loop detector's
// configuration, ingest counters and detection log.
type DetectionsView struct {
	ThresholdPPS float64         `json:"threshold_pps"`
	WindowS      float64         `json:"window_s"`
	CooldownS    float64         `json:"cooldown_s"`
	Records      int64           `json:"records"`
	Tracked      int             `json:"tracked_victims"`
	Active       int             `json:"active"`
	Detections   []DetectionView `json:"detections"`
}

func (s *Server) handleDetections(*http.Request) (any, *httpError) {
	if s.cfg.Detections == nil {
		return nil, notFound("no detector: this run does not mitigate")
	}
	st := s.cfg.Detections()
	out := &DetectionsView{
		ThresholdPPS: st.ThresholdPPS,
		WindowS:      st.Window.Seconds(),
		CooldownS:    st.Cooldown.Seconds(),
		Records:      st.Records,
		Tracked:      st.Tracked,
		Active:       st.Active,
		Detections:   make([]DetectionView, 0, len(st.Detections)),
	}
	opt := func(t time.Time) *time.Time {
		if t.IsZero() {
			return nil
		}
		return &t
	}
	for i := range st.Detections {
		d := &st.Detections[i]
		out.Detections = append(out.Detections, DetectionView{
			ID:          d.ID,
			Prefix:      bgp.HostPrefix(d.Victim).String(),
			DetectedAt:  d.DetectedAt,
			RatePPS:     d.RatePPS,
			Vectors:     d.Vectors,
			AnnouncedAt: opt(d.AnnouncedAt),
			FirstDropAt: opt(d.FirstDropAt),
			WithdrawnAt: opt(d.WithdrawnAt),
			Active:      d.Active(),
		})
	}
	return out, nil
}

// HistoryEntryView is one retained snapshot's summary, with the record
// delta against the previous retained entry.
type HistoryEntryView struct {
	At                time.Time `json:"at"`
	TotalRecords      int64     `json:"total_records"`
	AttributedRecords int64     `json:"attributed_records"`
	DroppedRecords    int64     `json:"dropped_records"`
	Events            int       `json:"events"`
	DeltaRecords      int64     `json:"delta_records"`
	DeltaEvents       int       `json:"delta_events"`
}

// HistoryView is /api/history: the rolling time series (?since= trims
// the left edge).
type HistoryView struct {
	IntervalMS int64              `json:"interval_ms"`
	Depth      int                `json:"depth"`
	Entries    []HistoryEntryView `json:"entries"`
}

func (s *Server) handleHistory(r *http.Request) (any, *httpError) {
	entries := s.ring.all()
	out := &HistoryView{
		IntervalMS: s.cfg.HistoryInterval.Milliseconds(),
		Depth:      s.cfg.HistoryDepth,
	}
	var since time.Time
	if v := r.URL.Query().Get("since"); v != "" {
		t, err := time.Parse(time.RFC3339Nano, v)
		if err != nil {
			return nil, badRequest("invalid since=%q: %v (want RFC 3339)", v, err)
		}
		since = t
	}
	var prev *rtbh.Report
	for _, e := range entries {
		if !e.at.Before(since) {
			ev := HistoryEntryView{
				At:                e.at.UTC(),
				TotalRecords:      e.rep.TotalRecords,
				AttributedRecords: e.rep.AttributedRecords,
				DroppedRecords:    e.rep.DroppedRecords,
				Events:            len(e.rep.Events),
			}
			if prev != nil {
				ev.DeltaRecords = e.rep.TotalRecords - prev.TotalRecords
				ev.DeltaEvents = len(e.rep.Events) - len(prev.Events)
			}
			out.Entries = append(out.Entries, ev)
		}
		prev = e.rep
	}
	return out, nil
}
