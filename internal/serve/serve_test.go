package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/analysis/collateral"
	"repro/internal/analysis/dropstats"
	"repro/internal/analysis/events"
	"repro/internal/analysis/load"
	"repro/internal/analysis/usecase"
	"repro/internal/bgp"
	"repro/internal/federation"
	"repro/internal/obs"
)

// fakeClock is a manually advanced clock for TTL-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(t time.Time) *fakeClock { return &fakeClock{t: t} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

var testPeriodStart = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

// testReport builds a small hand-rolled report: two events on distinct
// prefixes (one open-ended), efficacy for event 0 only, and enough of
// the figure results to exercise every endpoint's join logic.
func testReport() *rtbh.Report {
	ev0 := &rtbh.Event{
		ID:     0,
		Prefix: bgp.Prefix{Addr: 0x0A000001, Len: 32}, // 10.0.0.1/32
		Peer:   65001, OriginAS: 64512,
		Episodes: []events.Episode{
			{Announce: testPeriodStart.Add(1 * time.Hour), Withdraw: testPeriodStart.Add(2 * time.Hour)},
			{Announce: testPeriodStart.Add(3 * time.Hour), Withdraw: testPeriodStart.Add(5 * time.Hour)},
		},
		Announcements: 3,
	}
	ev1 := &rtbh.Event{
		ID:     1,
		Prefix: bgp.Prefix{Addr: 0x0A000002, Len: 32}, // 10.0.0.2/32
		Peer:   65002, OriginAS: 64513,
		Episodes: []events.Episode{
			{Announce: testPeriodStart.Add(6 * time.Hour)}, // open-ended
		},
		Announcements: 1,
	}
	return &rtbh.Report{
		TotalRecords:      1000,
		InternalRecords:   900,
		AttributedRecords: 400,
		DroppedRecords:    300,
		EventsWithData:    1,
		Fig5AvgPkts:       0.75,
		Fig5AvgBytes:      0.7,
		Events:            []*rtbh.Event{ev0, ev1},
		Verdicts: []rtbh.Verdict{
			{EventID: 0, HasPreData: true, Within10Min: true},
			{EventID: 1},
		},
		EventDrops: []rtbh.EventDropStat{
			{ID: 0, PrefixLen: 32, Counter: dropstats.Counter{
				DroppedPkts: 300, ForwardedPkts: 100,
				DroppedBytes: 30000, ForwardedBytes: 10000,
			}},
		},
		Fig3: &load.Result{AvgActive: 1.5, MaxActive: 2, MaxMessagesPerMinute: 4},
		Fig18: &collateral.Result{
			Events:      1,
			AllPkts:     []int64{400},
			DroppedPkts: []int64{300},
			MaxAll:      400,
		},
		Fig19: &usecase.Result{
			PerEvent: []usecase.EventClass{
				{EventID: 0, Class: usecase.ClassInfrastructureProtection},
				{EventID: 1, Class: usecase.ClassOther},
			},
			Counts: map[usecase.Class]int{
				usecase.ClassInfrastructureProtection: 1,
				usecase.ClassOther:                    1,
			},
			Shares: map[usecase.Class]float64{
				usecase.ClassInfrastructureProtection: 0.5,
				usecase.ClassOther:                    0.5,
			},
		},
	}
}

// fakeSource is a Source whose Snapshot returns a canned report and
// counts its calls.
type fakeSource struct {
	mu        sync.Mutex
	rep       *rtbh.Report
	err       error
	snapshots int
	updates   int
	flows     int64
	watermark time.Time
}

func newFakeSource() *fakeSource {
	return &fakeSource{
		rep:       testReport(),
		updates:   8,
		flows:     1000,
		watermark: testPeriodStart.Add(4 * time.Hour),
	}
}

func (f *fakeSource) Snapshot(rtbh.Options) (*rtbh.Report, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.snapshots++
	if f.err != nil {
		return nil, f.err
	}
	return f.rep, nil
}

func (f *fakeSource) snapshotCalls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.snapshots
}

func (f *fakeSource) Counts() (int, int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.updates, f.flows
}

func (f *fakeSource) Watermark() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.watermark
}

func (f *fakeSource) Period() (time.Time, time.Time) {
	return testPeriodStart, testPeriodStart.Add(24 * time.Hour)
}

func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *fakeSource, *fakeClock) {
	t.Helper()
	src := newFakeSource()
	clock := newFakeClock(testPeriodStart.Add(12 * time.Hour))
	cfg := Config{
		Source: src,
		MaxAge: 5 * time.Second,
		Clock:  clock.now,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, src, clock
}

// get performs a request against the server's handler and decodes the
// JSON body into out (when out is non-nil), returning the status code.
func get(t *testing.T, s *Server, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	body, _ := io.ReadAll(rr.Result().Body)
	if ct := rr.Result().Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type = %q, want application/json", path, ct)
	}
	if !strings.HasSuffix(string(body), "\n") {
		t.Fatalf("GET %s: body does not end in newline", path)
	}
	if out != nil && rr.Code == http.StatusOK {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding body: %v\n%s", path, err, body)
		}
	}
	return rr.Code
}

func TestNewRequiresSource(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil Source")
	}
}

func TestCacheTTLSemantics(t *testing.T) {
	s, src, clock := newTestServer(t, nil)

	// First request misses and snapshots.
	var sum SummaryView
	if code := get(t, s, "/api/summary", &sum); code != http.StatusOK {
		t.Fatalf("summary: status %d", code)
	}
	if src.snapshotCalls() != 1 {
		t.Fatalf("snapshots after first request = %d, want 1", src.snapshotCalls())
	}
	if sum.TotalRecords != 1000 || sum.Events != 2 {
		t.Fatalf("summary = %+v", sum)
	}

	// Within the TTL the cache serves without touching the source.
	clock.advance(2 * time.Second)
	for i := 0; i < 5; i++ {
		if code := get(t, s, "/api/summary", nil); code != http.StatusOK {
			t.Fatalf("cached summary: status %d", code)
		}
	}
	if src.snapshotCalls() != 1 {
		t.Fatalf("snapshots after cached requests = %d, want 1", src.snapshotCalls())
	}

	// A tighter per-request maxAge forces a refresh.
	if code := get(t, s, "/api/summary?maxAge=1s", nil); code != http.StatusOK {
		t.Fatalf("tight maxAge: status %d", code)
	}
	if src.snapshotCalls() != 2 {
		t.Fatalf("snapshots after maxAge=1s = %d, want 2", src.snapshotCalls())
	}

	// Past the default TTL the entry expires.
	clock.advance(6 * time.Second)
	if code := get(t, s, "/api/summary", nil); code != http.StatusOK {
		t.Fatalf("expired summary: status %d", code)
	}
	if src.snapshotCalls() != 3 {
		t.Fatalf("snapshots after expiry = %d, want 3", src.snapshotCalls())
	}

	// maxAge=0 always snapshots, even back-to-back.
	for i := 0; i < 3; i++ {
		if code := get(t, s, "/api/summary?maxAge=0", nil); code != http.StatusOK {
			t.Fatalf("maxAge=0: status %d", code)
		}
	}
	if src.snapshotCalls() != 6 {
		t.Fatalf("snapshots after three maxAge=0 = %d, want 6", src.snapshotCalls())
	}
}

func TestCacheSingleFlight(t *testing.T) {
	clock := newFakeClock(testPeriodStart)
	block := make(chan struct{})
	started := make(chan struct{}, 16)
	var calls int
	var mu sync.Mutex
	cache := newSnapshotCache(clock.now, func() (*rtbh.Report, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		started <- struct{}{}
		<-block
		return testReport(), nil
	})

	// One leader takes the snapshot; followers arriving while it is in
	// flight adopt its result instead of stacking refreshes.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, _, err := cache.get(time.Minute)
			if err != nil || rep == nil {
				t.Errorf("get: rep=%v err=%v", rep, err)
			}
		}()
	}
	<-started // leader is inside refresh
	// Give followers a moment to queue on the in-flight channel, then
	// release the leader.
	time.Sleep(20 * time.Millisecond)
	close(block)
	wg.Wait()

	mu.Lock()
	got := calls
	mu.Unlock()
	if got != 1 {
		t.Fatalf("refresh ran %d times for 8 concurrent readers, want 1", got)
	}
	if h := cache.hits.Value(); h != 7 {
		t.Fatalf("cache hits = %d, want 7", h)
	}
	if m := cache.misses.Value(); m != 1 {
		t.Fatalf("cache misses = %d, want 1", m)
	}
}

func TestCacheRefreshError(t *testing.T) {
	s, src, _ := newTestServer(t, nil)
	src.mu.Lock()
	src.err = fmt.Errorf("analyzer exploded")
	src.mu.Unlock()

	var errBody map[string]string
	req := httptest.NewRequest(http.MethodGet, "/api/summary", nil)
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	if err := json.NewDecoder(rr.Result().Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBody["error"], "analyzer exploded") {
		t.Fatalf("error body = %v", errBody)
	}
}

func TestBadQueryParams(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	for _, path := range []string{
		"/api/summary?maxAge=bogus",
		"/api/summary?maxAge=-1s",
		"/api/summary?at=not-a-time",
		"/api/active?t=not-a-time",
		"/api/history?since=not-a-time",
	} {
		if code := get(t, s, path, nil); code != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, code)
		}
	}
}

func TestUnknownPathAndMethod(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	if code := get(t, s, "/api/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", code)
	}
	req := httptest.NewRequest(http.MethodPost, "/api/summary", strings.NewReader("{}"))
	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST: status %d, want 405", rr.Code)
	}
}

func TestHistoryWindow(t *testing.T) {
	s, _, clock := newTestServer(t, func(cfg *Config) {
		cfg.HistoryDepth = 3
		cfg.HistoryInterval = time.Minute
	})

	// Empty ring: ?at= has nothing to serve.
	if code := get(t, s, "/api/summary?at=2019-01-01T12:00:00Z", nil); code != http.StatusNotFound {
		t.Fatalf("at with empty ring: status %d, want 404", code)
	}

	// Capture four entries a minute apart; depth 3 evicts the first.
	var captureTimes []time.Time
	for i := 0; i < 4; i++ {
		captureTimes = append(captureTimes, clock.now())
		if err := s.CaptureHistory(); err != nil {
			t.Fatal(err)
		}
		clock.advance(time.Minute)
	}

	var hist HistoryView
	if code := get(t, s, "/api/history", &hist); code != http.StatusOK {
		t.Fatalf("history: status %d", code)
	}
	if len(hist.Entries) != 3 {
		t.Fatalf("history entries = %d, want 3 (depth cap)", len(hist.Entries))
	}
	if !hist.Entries[0].At.Equal(captureTimes[1]) {
		t.Fatalf("oldest retained = %v, want %v", hist.Entries[0].At, captureTimes[1])
	}

	// since= trims the left edge inclusively.
	var trimmed HistoryView
	path := "/api/history?since=" + captureTimes[2].UTC().Format(time.RFC3339Nano)
	if code := get(t, s, path, &trimmed); code != http.StatusOK {
		t.Fatalf("history since: status %d", code)
	}
	if len(trimmed.Entries) != 2 || !trimmed.Entries[0].At.Equal(captureTimes[2]) {
		t.Fatalf("since window = %+v, want 2 entries from %v", trimmed.Entries, captureTimes[2])
	}

	// ?at= floors to the newest entry at or before t.
	mid := captureTimes[2].Add(30 * time.Second)
	var sum SummaryView
	path = "/api/summary?at=" + mid.UTC().Format(time.RFC3339Nano)
	if code := get(t, s, path, &sum); code != http.StatusOK {
		t.Fatalf("summary at: status %d", code)
	}
	if !sum.TakenAt.Equal(captureTimes[2]) {
		t.Fatalf("at floor: taken_at = %v, want %v", sum.TakenAt, captureTimes[2])
	}

	// Before the retained window: 404, not the oldest entry.
	before := captureTimes[1].Add(-time.Second)
	path = "/api/summary?at=" + before.UTC().Format(time.RFC3339Nano)
	if code := get(t, s, path, nil); code != http.StatusNotFound {
		t.Fatalf("at before window: status %d, want 404", code)
	}
}

func TestRingRejectsNonIncreasing(t *testing.T) {
	r := newHistoryRing(4)
	rep := testReport()
	at := testPeriodStart
	if !r.add(at, rep) {
		t.Fatal("first add rejected")
	}
	if r.add(at, rep) {
		t.Fatal("same-timestamp add accepted")
	}
	if r.add(at.Add(-time.Second), rep) {
		t.Fatal("backwards add accepted")
	}
	if r.len() != 1 {
		t.Fatalf("len = %d, want 1", r.len())
	}
}

func TestHealthEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, func(cfg *Config) {
		cfg.Info = map[string]string{"scale": "test"}
	})
	var h HealthView
	if code := get(t, s, "/api/health", &h); code != http.StatusOK {
		t.Fatalf("health: status %d", code)
	}
	if h.Status != "ok" || h.Updates != 8 || h.Flows != 1000 {
		t.Fatalf("health = %+v", h)
	}
	if h.Federated {
		t.Fatal("single-IXP server reports federated")
	}
	if h.Info["scale"] != "test" {
		t.Fatalf("info = %v", h.Info)
	}
	if len(h.Endpoints) != len(endpointNames) {
		t.Fatalf("endpoints = %v", h.Endpoints)
	}
}

func TestEventsEndpointJoins(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	var ev EventsView
	if code := get(t, s, "/api/events", &ev); code != http.StatusOK {
		t.Fatalf("events: status %d", code)
	}
	if ev.Count != 2 || len(ev.Events) != 2 {
		t.Fatalf("events = %+v", ev)
	}
	e0 := ev.Events[0]
	if e0.Prefix != "10.0.0.1/32" || e0.Class != "infrastructure-protection" || !e0.AnomalyWithin10Min {
		t.Fatalf("event 0 = %+v", e0)
	}
	if e0.Efficacy == nil || e0.Efficacy.DroppedPkts != 300 || e0.Efficacy.DropRatePkts != 0.75 {
		t.Fatalf("event 0 efficacy = %+v", e0.Efficacy)
	}
	if e0.Open || e0.Episodes != 2 {
		t.Fatalf("event 0 shape = %+v", e0)
	}
	e1 := ev.Events[1]
	if !e1.Open || e1.Efficacy != nil || e1.Class != "other" || e1.AnomalyWithin10Min {
		t.Fatalf("event 1 = %+v", e1)
	}
}

func TestActiveEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, nil)

	// Default instant is the watermark (T+4h): episode 2 of event 0 is
	// active (3h..5h) and event 1 has not started.
	var act ActiveView
	if code := get(t, s, "/api/active", &act); code != http.StatusOK {
		t.Fatalf("active: status %d", code)
	}
	if act.Active != 1 || len(act.EventIDs) != 1 || act.EventIDs[0] != 0 {
		t.Fatalf("active@watermark = %+v", act)
	}
	if act.ByPrefixLen[32] != 1 {
		t.Fatalf("by_prefix_len = %v", act.ByPrefixLen)
	}
	if act.AvgActive != 1.5 || act.MaxActive != 2 {
		t.Fatalf("load summary = %+v", act)
	}

	// Explicit ?t= at T+7h: only the open-ended event 1.
	at := testPeriodStart.Add(7 * time.Hour)
	var later ActiveView
	path := "/api/active?t=" + at.UTC().Format(time.RFC3339Nano)
	if code := get(t, s, path, &later); code != http.StatusOK {
		t.Fatalf("active?t: status %d", code)
	}
	if later.Active != 1 || later.EventIDs[0] != 1 {
		t.Fatalf("active@t+7h = %+v", later)
	}
}

func TestCollateralAndUseCases(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	var col CollateralView
	if code := get(t, s, "/api/collateral", &col); code != http.StatusOK {
		t.Fatalf("collateral: status %d", code)
	}
	if col.Events != 1 || col.MaxAllPkts != 400 || len(col.DroppedPkts) != 1 {
		t.Fatalf("collateral = %+v", col)
	}

	var uc UseCasesView
	if code := get(t, s, "/api/usecases", &uc); code != http.StatusOK {
		t.Fatalf("usecases: status %d", code)
	}
	if uc.Counts["infrastructure-protection"] != 1 || uc.Shares["other"] != 0.5 {
		t.Fatalf("usecases = %+v", uc)
	}
}

func TestVictimsEndpoint(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	var v VictimsView
	if code := get(t, s, "/api/victims", &v); code != http.StatusOK {
		t.Fatalf("victims: status %d", code)
	}
	if v.Count != 2 || len(v.Victims) != 2 {
		t.Fatalf("victims = %+v", v)
	}
	// Sorted by dropped packets: the event-0 victim first.
	if v.Victims[0].Prefix != "10.0.0.1/32" || v.Victims[0].DroppedPkts != 300 {
		t.Fatalf("victim 0 = %+v", v.Victims[0])
	}
	if v.Victims[0].DropRatePkts != 0.75 || v.Victims[0].Classes["infrastructure-protection"] != 1 {
		t.Fatalf("victim 0 stats = %+v", v.Victims[0])
	}
	if v.Victims[1].Prefix != "10.0.0.2/32" || v.Victims[1].DroppedPkts != 0 {
		t.Fatalf("victim 1 = %+v", v.Victims[1])
	}
}

func TestFederationEndpoint(t *testing.T) {
	// Without a provider the endpoint is 404.
	s, _, _ := newTestServer(t, nil)
	if code := get(t, s, "/api/federation", nil); code != http.StatusNotFound {
		t.Fatalf("non-federated: status %d, want 404", code)
	}

	// With a provider it renders the cross view.
	s2, _, _ := newTestServer(t, func(cfg *Config) {
		cfg.Federation = func() (*rtbh.FederatedReport, error) {
			return &rtbh.FederatedReport{
				PerIXP: []*rtbh.IXPReport{
					{IXP: 0, Report: testReport()},
					{IXP: 1, ClockOffset: 250 * time.Millisecond, Report: testReport()},
				},
				Cross: &federation.CrossView{
					LeakedEvents: 1,
					DroppedPkts:  300,
					ForeignPkts:  40,
					ForeignShare: 40.0 / 340.0,
				},
			}, nil
		}
	})
	var fv FederationView
	if code := get(t, s2, "/api/federation", &fv); code != http.StatusOK {
		t.Fatalf("federated: status %d", code)
	}
	if fv.IXPs != 2 || fv.LeakedEvents != 1 || fv.ForeignPkts != 40 {
		t.Fatalf("federation = %+v", fv)
	}
	if len(fv.PerIXP) != 2 || fv.PerIXP[1].ClockOffsetMS != 250 {
		t.Fatalf("per_ixp = %+v", fv.PerIXP)
	}

	// And health reflects federation.
	var h HealthView
	if code := get(t, s2, "/api/health", &h); code != http.StatusOK {
		t.Fatalf("health: status %d", code)
	}
	if !h.Federated {
		t.Fatal("federated server reports federated=false")
	}
}

func TestFederationProviderError(t *testing.T) {
	s, _, _ := newTestServer(t, func(cfg *Config) {
		cfg.Federation = func() (*rtbh.FederatedReport, error) {
			return nil, fmt.Errorf("merge failed")
		}
	})
	if code := get(t, s, "/api/federation", nil); code != http.StatusInternalServerError {
		t.Fatalf("provider error: status %d, want 500", code)
	}
}

func TestHistoryDeltas(t *testing.T) {
	src := newFakeSource()
	clock := newFakeClock(testPeriodStart)
	s, err := New(Config{Source: src, Clock: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	if err := s.CaptureHistory(); err != nil {
		t.Fatal(err)
	}
	// Grow the world between captures.
	grown := testReport()
	grown.TotalRecords = 1500
	grown.Events = append(grown.Events, &rtbh.Event{
		ID:     2,
		Prefix: bgp.Prefix{Addr: 0x0A000003, Len: 32},
		Peer:   65003, OriginAS: 64514,
		Episodes:      []events.Episode{{Announce: testPeriodStart.Add(8 * time.Hour)}},
		Announcements: 1,
	})
	src.mu.Lock()
	src.rep = grown
	src.mu.Unlock()
	clock.advance(5 * time.Minute)
	if err := s.CaptureHistory(); err != nil {
		t.Fatal(err)
	}

	var hist HistoryView
	if code := get(t, s, "/api/history", &hist); code != http.StatusOK {
		t.Fatalf("history: status %d", code)
	}
	if len(hist.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(hist.Entries))
	}
	e0, e1 := hist.Entries[0], hist.Entries[1]
	if e0.DeltaRecords != 0 || e0.DeltaEvents != 0 {
		t.Fatalf("first entry has deltas: %+v", e0)
	}
	if e1.DeltaRecords != 500 || e1.DeltaEvents != 1 {
		t.Fatalf("second entry deltas = %+v, want +500 records, +1 event", e1)
	}
}

func TestServeMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	s, _, _ := newTestServer(t, func(cfg *Config) { cfg.Metrics = reg })

	get(t, s, "/api/summary", nil) // miss
	get(t, s, "/api/summary", nil) // hit
	get(t, s, "/api/nope", nil)    // error

	snap := reg.Snapshot()
	if snap.Counter("serve.requests.summary") != 2 {
		t.Fatalf("summary requests = %d", snap.Counter("serve.requests.summary"))
	}
	if snap.Counter("serve.cache_misses") != 1 || snap.Counter("serve.cache_hits") != 1 {
		t.Fatalf("cache counters = miss:%d hit:%d",
			snap.Counter("serve.cache_misses"), snap.Counter("serve.cache_hits"))
	}
	if snap.Counter("serve.errors") != 1 {
		t.Fatalf("errors = %d", snap.Counter("serve.errors"))
	}
	if !snap.Has("serve.latency_ms") || !snap.Has("serve.history_entries") {
		t.Fatal("latency histogram or history gauge missing")
	}
}

func TestStartAndClose(t *testing.T) {
	s, _, _ := newTestServer(t, nil)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + addr.String() + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health over TCP: status %d", resp.StatusCode)
	}
	var h HealthView
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
