package stats

import "testing"

// BenchmarkEWMAObserve measures the per-slot detector cost: the anomaly
// analysis runs five of these per slot per event window.
func BenchmarkEWMAObserve(b *testing.B) {
	e := NewEWMA(288, 2.5)
	r := NewRNG(1)
	for i := 0; i < 288; i++ {
		e.Observe(r.Float64() * 100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Observe(float64(i & 0xff))
	}
}

// BenchmarkBinomialSampling measures the 1:10000 thinning hot path.
func BenchmarkBinomialSampling(b *testing.B) {
	r := NewRNG(2)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += r.Binomial(1_000_000, 0.0001)
	}
	_ = sink
}

// BenchmarkRNGUint64 measures the base generator.
func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(3)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
