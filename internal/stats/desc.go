package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the default of most
// data-analysis tools, matching the paper's tooling). xs need not be
// sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantileSorted is Quantile for data already in ascending order. It does
// not allocate.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(s []float64, q float64) float64 {
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ECDF is an empirical cumulative distribution function over a fixed
// sample. The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile of the sample.
func (e *ECDF) Quantile(q float64) float64 {
	return QuantileSorted(e.sorted, q)
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Values returns the sorted sample. The caller must not modify it.
func (e *ECDF) Values() []float64 { return e.sorted }

// Points returns up to n evenly spaced (x, P(X<=x)) points suitable for
// plotting the CDF curve, always including the extremes.
func (e *ECDF) Points(n int) (xs, ps []float64) {
	m := len(e.sorted)
	if m == 0 || n <= 0 {
		return nil, nil
	}
	if n > m {
		n = m
	}
	xs = make([]float64, 0, n)
	ps = make([]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (m - 1) / max(n-1, 1)
		xs = append(xs, e.sorted[idx])
		ps = append(ps, float64(idx+1)/float64(m))
	}
	return xs, ps
}

// Histogram counts values into uniform-width bins over [lo, hi]. Values
// outside the range are clamped to the first/last bin, which is the right
// behaviour for the bounded shares (0..1) and offsets the analysis bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
}

// NewHistogram creates a histogram with bins uniform bins across [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records one observation of x.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(float64(bins) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}
