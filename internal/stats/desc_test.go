package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice mean/std should be 0")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileEmpty(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 1+r.Intn(50))
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ECDF.At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestECDFProperties(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		xs := make([]float64, 1+r.Intn(100))
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		e := NewECDF(xs)
		// Monotone non-decreasing, bounded in [0,1].
		prev := 0.0
		for x := -40.0; x <= 40; x += 1.0 {
			p := e.At(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		// At(max) == 1.
		maxv := xs[0]
		for _, v := range xs {
			if v > maxv {
				maxv = v
			}
		}
		return e.At(maxv) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{5, 1, 3, 2, 4})
	xs, ps := e.Points(3)
	if len(xs) != 3 || len(ps) != 3 {
		t.Fatalf("Points returned %d/%d values", len(xs), len(ps))
	}
	if xs[0] != 1 || xs[2] != 5 {
		t.Fatalf("Points extremes = %v", xs)
	}
	if ps[2] != 1 {
		t.Fatalf("final CDF point = %v, want 1", ps[2])
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatal("Points xs not sorted")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, v := range []float64{-1, 0, 0.1, 0.3, 0.6, 0.9, 1.0, 2.0} {
		h.Add(v)
	}
	if h.Total() != 8 {
		t.Fatalf("Total = %d", h.Total())
	}
	// -1 and 0 and 0.1 in bin 0; 0.3 in bin 1; 0.6 in bin 2; 0.9, 1.0, 2.0 in bin 3.
	want := []int64{3, 1, 1, 3}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bin %d = %d, want %d (%v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if c := h.BinCenter(0); math.Abs(c-0.125) > 1e-12 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestHistogramPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 4)
}
