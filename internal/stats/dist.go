package stats

import "math"

// Poisson draws a Poisson-distributed variate with mean lambda.
//
// For small lambda it uses Knuth's multiplication method; for large lambda
// it switches to a normal approximation with continuity correction, which
// is accurate to well under a packet for the flow volumes the simulator
// produces (lambda in the thousands and beyond).
func (r *RNG) Poisson(lambda float64) int64 {
	switch {
	case lambda <= 0:
		return 0
	case lambda < 30:
		l := math.Exp(-lambda)
		k := int64(0)
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		// Normal approximation N(lambda, lambda).
		v := lambda + math.Sqrt(lambda)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int64(v)
	}
}

// Binomial draws the number of successes in n trials with success
// probability p. This is the exact model of a 1:N random packet sampler
// applied to a flow of n packets.
//
// Three regimes keep it O(1)-ish for the huge n / tiny p case that
// dominates IPFIX-style sampling: exact Bernoulli for small n, a Poisson
// approximation when n*p is small relative to n, and a normal
// approximation otherwise.
func (r *RNG) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	mean := float64(n) * p
	switch {
	case n <= 64:
		var k int64
		for i := int64(0); i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	case p < 0.01 && mean < 1000:
		// Poisson limit theorem; clamp to n.
		k := r.Poisson(mean)
		if k > n {
			return n
		}
		return k
	default:
		sd := math.Sqrt(mean * (1 - p))
		v := mean + sd*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		if v > float64(n) {
			return n
		}
		return int64(v)
	}
}

// Pareto draws a bounded Pareto variate in [lo, hi] with shape alpha.
// Heavy-tailed draws model flow sizes and per-AS traffic contributions,
// both of which are strongly skewed at real IXPs.
func (r *RNG) Pareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// LogNormal draws exp(N(mu, sigma^2)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Zipf draws a rank in [0, n) following a Zipf distribution with exponent
// s (> 0). Rank 0 is the most popular. Used for service-port popularity
// and amplifier reuse. Implemented by inverse-CDF over precomputed
// weights when n is small, otherwise by rejection sampling.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the CDF for n ranks with exponent s.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Draw returns a rank in [0, n).
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// WeightedChoice selects index i with probability weights[i]/sum(weights).
// It panics if weights is empty; non-positive weights are treated as zero.
func (r *RNG) WeightedChoice(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: WeightedChoice with no weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
