package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPoissonMoments(t *testing.T) {
	r := NewRNG(10)
	for _, lambda := range []float64{0.5, 3, 25, 100, 5000} {
		const n = 50000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(lambda))
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.1 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.5 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
}

func TestPoissonEdgeCases(t *testing.T) {
	r := NewRNG(11)
	if v := r.Poisson(0); v != 0 {
		t.Fatalf("Poisson(0) = %d", v)
	}
	if v := r.Poisson(-3); v != 0 {
		t.Fatalf("Poisson(-3) = %d", v)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := NewRNG(12)
	cases := []struct {
		n int64
		p float64
	}{
		{50, 0.4},          // exact path
		{100000, 0.0001},   // Poisson path (the sampling regime)
		{1000000, 0.3},     // normal path
		{10000000, 0.0001}, // 1:10000 sampling of a large flow
	}
	for _, c := range cases {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(r.Binomial(c.n, c.p))
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		if math.Abs(mean-want) > 0.05*want+0.5 {
			t.Errorf("Binomial(%d, %v) mean = %v, want ~%v", c.n, c.p, mean, want)
		}
	}
}

func TestBinomialBounds(t *testing.T) {
	f := func(seed uint64, nRaw int64, pRaw float64) bool {
		n := nRaw % 1000000
		if n < 0 {
			n = -n
		}
		p := math.Abs(pRaw)
		p -= math.Floor(p) // into [0,1)
		r := NewRNG(seed)
		k := r.Binomial(n, p)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialDegenerate(t *testing.T) {
	r := NewRNG(13)
	if v := r.Binomial(100, 0); v != 0 {
		t.Fatalf("Binomial(100, 0) = %d", v)
	}
	if v := r.Binomial(100, 1); v != 100 {
		t.Fatalf("Binomial(100, 1) = %d", v)
	}
	if v := r.Binomial(0, 0.5); v != 0 {
		t.Fatalf("Binomial(0, .5) = %d", v)
	}
}

func TestParetoBounds(t *testing.T) {
	r := NewRNG(14)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1.2, 10, 1000)
		if v < 10 || v > 1000 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
}

func TestParetoSkew(t *testing.T) {
	// A bounded Pareto with alpha just above 1 should put most mass near lo.
	r := NewRNG(15)
	const n = 50000
	below := 0
	for i := 0; i < n; i++ {
		if r.Pareto(1.2, 10, 10000) < 100 {
			below++
		}
	}
	if frac := float64(below) / n; frac < 0.8 {
		t.Fatalf("Pareto(1.2) mass below 10*lo = %v, want > 0.8", frac)
	}
}

func TestZipfRankDistribution(t *testing.T) {
	r := NewRNG(16)
	z := NewZipf(100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Draw(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf rank 0 (%d) not more popular than rank 50 (%d)", counts[0], counts[50])
	}
	// Rank 0 should get roughly 1/H(100) ~ 19% of the mass.
	frac := float64(counts[0]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("Zipf rank-0 share = %v, want ~0.19", frac)
	}
}

func TestZipfDrawInRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		z := NewZipf(17, 0.8)
		for i := 0; i < 100; i++ {
			v := z.Draw(r)
			if v < 0 || v >= 17 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(17)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoiceAllZero(t *testing.T) {
	r := NewRNG(18)
	// Degenerate weights fall back to uniform; result must stay in range.
	for i := 0; i < 100; i++ {
		v := r.WeightedChoice([]float64{0, 0, 0, 0})
		if v < 0 || v >= 4 {
			t.Fatalf("WeightedChoice out of range: %d", v)
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(2, 1); v <= 0 {
			t.Fatalf("LogNormal <= 0: %v", v)
		}
	}
}
