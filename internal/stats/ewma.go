package stats

import "math"

// EWMA implements the exponentially weighted moving average detector used
// by the paper (§5.3): a sliding window of Window slots, decay parameter
// alpha = 2/(span+1), weights w_i = (1-alpha)^i with i the age of the
// observation, and the weighted average
//
//	y_t = sum_i w_i * x_{t-i} / sum_i w_i.
//
// A value is anomalous when it exceeds y_t by more than Threshold times the
// exponentially weighted standard deviation. The paper requires a full
// window before any detection, i.e. no anomaly during the first Window
// slots; this implementation enforces the same rule.
//
// The windowed weighted sums are maintained incrementally in O(1) per
// observation:
//
//	S_t = x_t + (1-alpha) S_{t-1} - (1-alpha)^W x_{t-W}
//
// and likewise for the sum of squares. To keep floating-point drift from
// accumulating over very long streams, the sums are recomputed exactly from
// the ring buffer at a fixed cadence.
type EWMA struct {
	// Span is the smoothing span s in alpha = 2/(s+1). The paper uses
	// 288 (24 hours of 5-minute slots).
	Span int
	// Window is the number of most recent observations considered. The
	// paper shifts a full 24-hour window, so Window == Span.
	Window int
	// Threshold is the multiple of the weighted standard deviation above
	// the weighted mean at which an observation is tagged anomalous.
	// The paper uses 2.5.
	Threshold float64

	decay    float64 // 1 - alpha
	decayW   float64 // (1 - alpha)^Window
	buf      []float64
	n        int // observations seen so far
	head     int // ring index of most recent value
	sum      float64
	sumSq    float64
	sincefix int // observations since the last exact recompute
}

// ewmaRefreshEvery bounds floating-point drift: after this many pushes the
// incremental sums are recomputed exactly from the ring buffer.
const ewmaRefreshEvery = 4096

// NewEWMA returns a detector with the paper's parameterisation for the
// given span (window == span) and threshold.
func NewEWMA(span int, threshold float64) *EWMA {
	if span <= 0 {
		panic("stats: NewEWMA with non-positive span")
	}
	alpha := 2 / (float64(span) + 1)
	e := &EWMA{
		Span:      span,
		Window:    span,
		Threshold: threshold,
		decay:     1 - alpha,
		buf:       make([]float64, span),
	}
	e.decayW = math.Pow(e.decay, float64(span))
	return e
}

// Ready reports whether a full window has been observed, i.e. whether
// Observe can return an anomaly verdict.
func (e *EWMA) Ready() bool { return e.n >= e.Window }

// weightSum returns sum_{i=0}^{m-1} decay^i for the current fill level m.
func (e *EWMA) weightSum() float64 {
	m := e.n
	if m > e.Window {
		m = e.Window
	}
	if m == 0 {
		return 0
	}
	alpha := 1 - e.decay
	return (1 - math.Pow(e.decay, float64(m))) / alpha
}

// MeanStd returns the exponentially weighted mean and standard deviation
// over the current window contents. Returns (0, 0) before any observation.
func (e *EWMA) MeanStd() (mean, std float64) {
	ws := e.weightSum()
	if ws == 0 {
		return 0, 0
	}
	mean = e.sum / ws
	v := e.sumSq/ws - mean*mean
	if v < 0 {
		v = 0 // guard against rounding
	}
	return mean, math.Sqrt(v)
}

// Observe appends x to the window and reports whether x is anomalous with
// respect to the window state *before* x was appended. Per the paper, no
// anomaly is reported until a full window of prior observations exists.
func (e *EWMA) Observe(x float64) bool {
	anomalous := false
	if e.Ready() {
		mean, std := e.MeanStd()
		if std == 0 {
			// A flat history makes any strictly larger value anomalous;
			// require a real increase to avoid tagging constant streams.
			anomalous = x > mean && x-mean > 1e-9
		} else {
			anomalous = x > mean+e.Threshold*std
		}
	}
	e.push(x)
	return anomalous
}

func (e *EWMA) push(x float64) {
	var evicted float64
	full := e.n >= e.Window
	e.head = (e.head + 1) % e.Window
	if full {
		evicted = e.buf[e.head]
	}
	e.buf[e.head] = x
	e.n++

	e.sum = x + e.decay*e.sum - e.decayW*evicted*boolTo1(full)
	e.sumSq = x*x + e.decay*e.sumSq - e.decayW*evicted*evicted*boolTo1(full)

	e.sincefix++
	if e.sincefix >= ewmaRefreshEvery {
		e.recompute()
	}
}

func boolTo1(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// recompute rebuilds the incremental sums exactly from the ring buffer.
func (e *EWMA) recompute() {
	e.sincefix = 0
	m := e.n
	if m > e.Window {
		m = e.Window
	}
	var s, q float64
	w := 1.0
	for age := 0; age < m; age++ {
		idx := e.head - age
		if idx < 0 {
			idx += e.Window
		}
		v := e.buf[idx]
		s += w * v
		q += w * v * v
		w *= e.decay
	}
	e.sum, e.sumSq = s, q
}

// Reset clears all observed state, reusing buffers.
func (e *EWMA) Reset() {
	e.n = 0
	e.head = 0
	e.sum = 0
	e.sumSq = 0
	e.sincefix = 0
	for i := range e.buf {
		e.buf[i] = 0
	}
}
