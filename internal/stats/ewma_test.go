package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEWMANotReadyBeforeFullWindow(t *testing.T) {
	e := NewEWMA(10, 2.5)
	for i := 0; i < 10; i++ {
		if e.Ready() {
			t.Fatalf("Ready after %d observations, window 10", i)
		}
		// Even a huge spike must not be tagged before the window fills.
		if e.Observe(1e9) {
			t.Fatalf("anomaly reported during warm-up at observation %d", i)
		}
	}
	if !e.Ready() {
		t.Fatal("not Ready after a full window")
	}
}

func TestEWMADetectsSpike(t *testing.T) {
	e := NewEWMA(288, 2.5)
	r := NewRNG(100)
	for i := 0; i < 288; i++ {
		e.Observe(100 + 5*r.NormFloat64())
	}
	if e.Observe(100) {
		t.Fatal("baseline value tagged anomalous")
	}
	if !e.Observe(100 + 100) {
		t.Fatal("20-sigma spike not tagged anomalous")
	}
}

func TestEWMAFlatHistory(t *testing.T) {
	e := NewEWMA(50, 2.5)
	for i := 0; i < 50; i++ {
		e.Observe(7)
	}
	if e.Observe(7) {
		t.Fatal("constant stream tagged anomalous")
	}
	if !e.Observe(8) {
		t.Fatal("increase over flat history not tagged")
	}
}

func TestEWMAMeanStdAgainstDirectFormula(t *testing.T) {
	// Compare the incremental implementation against a direct evaluation
	// of the paper's formula over the window.
	const span = 20
	e := NewEWMA(span, 2.5)
	r := NewRNG(101)
	var window []float64
	alpha := 2.0 / (span + 1)
	for i := 0; i < 200; i++ {
		x := r.Float64() * 50
		e.Observe(x)
		window = append(window, x)
		if len(window) > span {
			window = window[1:]
		}
		var wsum, mean float64
		for age := 0; age < len(window); age++ {
			w := math.Pow(1-alpha, float64(age))
			wsum += w
			mean += w * window[len(window)-1-age]
		}
		mean /= wsum
		var variance float64
		for age := 0; age < len(window); age++ {
			w := math.Pow(1-alpha, float64(age))
			d := window[len(window)-1-age] - mean
			variance += w * d * d
		}
		variance /= wsum
		gotMean, gotStd := e.MeanStd()
		if math.Abs(gotMean-mean) > 1e-6 {
			t.Fatalf("step %d: mean = %v, want %v", i, gotMean, mean)
		}
		if math.Abs(gotStd-math.Sqrt(variance)) > 1e-6 {
			t.Fatalf("step %d: std = %v, want %v", i, gotStd, math.Sqrt(variance))
		}
	}
}

func TestEWMARecentValuesWeighHeavier(t *testing.T) {
	// After a level shift the mean should move toward the new level
	// faster than a plain moving average of the same window would.
	e := NewEWMA(100, 2.5)
	for i := 0; i < 100; i++ {
		e.Observe(0)
	}
	for i := 0; i < 50; i++ {
		e.Observe(10)
	}
	mean, _ := e.MeanStd()
	if mean <= 5 {
		t.Fatalf("EWMA mean after half-window of new level = %v, want > 5 (recency weighting)", mean)
	}
}

func TestEWMAReset(t *testing.T) {
	e := NewEWMA(10, 2.5)
	for i := 0; i < 30; i++ {
		e.Observe(float64(i))
	}
	e.Reset()
	if e.Ready() {
		t.Fatal("Ready after Reset")
	}
	if m, s := e.MeanStd(); m != 0 || s != 0 {
		t.Fatalf("MeanStd after Reset = %v, %v", m, s)
	}
}

func TestEWMANumericalStabilityLongStream(t *testing.T) {
	// Run far past the refresh cadence and confirm the incremental state
	// still matches an exact recompute.
	e := NewEWMA(288, 2.5)
	r := NewRNG(102)
	for i := 0; i < 3*ewmaRefreshEvery+17; i++ {
		e.Observe(1e6 * r.Float64())
	}
	m1, s1 := e.MeanStd()
	e.recompute()
	m2, s2 := e.MeanStd()
	if math.Abs(m1-m2) > 1e-3 || math.Abs(s1-s2) > 1e-3 {
		t.Fatalf("incremental state drifted: mean %v vs %v, std %v vs %v", m1, m2, s1, s2)
	}
}

func TestEWMAStdNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		e := NewEWMA(1+r.Intn(64), 2.5)
		for i := 0; i < 300; i++ {
			e.Observe(r.Float64() * 1000)
			if _, s := e.MeanStd(); s < 0 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMAHighThresholdFiresLess(t *testing.T) {
	// The paper reports stable results between 2.5*SD and 10*SD for their
	// bursts; structurally, a higher threshold can never fire more often.
	r := NewRNG(103)
	low := NewEWMA(100, 2.5)
	high := NewEWMA(100, 10)
	lowCount, highCount := 0, 0
	for i := 0; i < 2000; i++ {
		x := r.Float64() * 10
		if i%97 == 0 {
			x += 500
		}
		if low.Observe(x) {
			lowCount++
		}
		if high.Observe(x) {
			highCount++
		}
	}
	if highCount > lowCount {
		t.Fatalf("threshold 10 fired %d > threshold 2.5 fired %d", highCount, lowCount)
	}
	if lowCount == 0 {
		t.Fatal("2.5-sigma detector never fired on planted bursts")
	}
}
