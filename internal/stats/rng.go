// Package stats provides the numerical building blocks shared by the
// simulator and the analysis pipeline: deterministic pseudo-random number
// streams, discrete and continuous distribution samplers, descriptive
// statistics (quantiles, ECDFs, histograms), and exponentially weighted
// moving averages as used by the paper's anomaly detector.
//
// Everything in this package is allocation-conscious and deterministic:
// given the same seed, a simulation reproduces bit-identically across runs
// and platforms, which the test suite and the benchmark harness rely on.
package stats

import "math"

// SplitMix64 is a tiny, fast 64-bit PRNG used here exclusively to seed and
// derive other generators. It is the standard seeding routine recommended
// for the xoshiro family: consecutive outputs of SplitMix64 are
// well-distributed even for pathological seeds such as 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RNG is a xoshiro256** generator. It is the workhorse generator for the
// simulator: small state, excellent statistical quality, and cheap to fork
// into independent substreams.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64.
func NewRNG(seed uint64) *RNG {
	sm := NewSplitMix64(seed)
	var r RNG
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 cannot emit
	// four consecutive zeros, so this is purely defensive.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Fork derives an independent substream. The child stream is seeded from
// the parent's output combined with label, so components of the simulator
// (traffic per member, attack schedule, sampler, ...) each consume their
// own stream and inserting a new consumer does not perturb the others.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
