package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the public-domain reference
	// implementation by Sebastiano Vigna.
	sm := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	for i, w := range want {
		if got := sm.Next(); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded RNGs diverged at step %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("forked streams emitted %d identical values in 1000 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(1)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(2)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(3).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(6)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", p)
	}
	if r.Bool(0) {
		t.Fatal("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Fatal("Bool(1) returned false")
	}
}
