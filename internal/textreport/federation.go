package textreport

import (
	"fmt"
	"io"

	rtbh "repro"
)

// RenderFederation prints a federated analysis: one summary line per
// exchange, the cross-exchange leakage join (what one IXP blackholed
// while another kept delivering), and then the full global report —
// which for a complete federation is identical to the single-IXP
// report over the union of the archives.
func RenderFederation(w io.Writer, fr *rtbh.FederatedReport) {
	fmt.Fprintf(w, "== FEDERATION: %d exchanges ==\n", len(fr.PerIXP))
	for _, v := range fr.PerIXP {
		r := v.Report
		fmt.Fprintf(w, "ixp%d: %d events, %d flow records, %d attributed, clock offset %v\n",
			v.IXP, len(r.Events), r.TotalRecords, r.AttributedRecords, v.ClockOffset)
	}
	if c := fr.Cross; c != nil {
		fmt.Fprintf(w, "cross: %d events with during-event traffic, %d leaked (dropped at the signaling exchange, delivered at another)\n",
			len(c.Events), c.LeakedEvents)
		fmt.Fprintf(w, "cross: %d pkts dropped where signaled, %d delivered foreign — foreign share %.4f\n",
			c.DroppedPkts, c.ForeignPkts, c.ForeignShare)
		for _, e := range c.Events {
			if e.ForeignDelivered == 0 {
				continue
			}
			fmt.Fprintf(w, "cross: event %d %s via AS%d foreign-delivered share %.4f across", e.EventID, e.Prefix, e.Peer, e.ForeignDelivered)
			for _, t := range e.IXPs {
				mark := ""
				if t.LocalRTBH {
					mark = "*"
				}
				fmt.Fprintf(w, " ixp%d%s(drop %d, fwd %d)", t.IXP, mark, t.DroppedPkts, t.ForwardedPkts)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w)
	RenderAll(w, fr.Global)
}
