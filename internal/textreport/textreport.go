// Package textreport renders every reproduced figure and table as text,
// one experiment per identifier (fig2..fig19, table1..table4), each
// annotated with the paper's reported values so that a run can be read as
// a paper-vs-measured comparison. Both rtbh-analyze and rtbh-experiments
// print through this package, and EXPERIMENTS.md is generated from it.
package textreport

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	rtbh "repro"
	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/usecase"
	"repro/internal/peeringdb"
	"repro/internal/radviz"
)

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the harness identifier, e.g. "fig6" or "table3".
	ID string
	// Title names the experiment.
	Title string
	// Paper states what the paper reports for it.
	Paper string
	// Render prints the measured rows/series.
	Render func(w io.Writer, r *rtbh.Report)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "fig2",
			Title: "Maximum-likelihood time offset between control and data plane",
			Paper: "maximum overlap 99.36% at an offset of 0.04s",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "dropped records: %d\n", r.Fig2.Dropped)
				fmt.Fprintf(w, "best offset: %v, overlap %.4f\n", r.Fig2.BestOffset, r.Fig2.BestOverlap)
				fmt.Fprintln(w, "offset_s overlap")
				for i, p := range r.Fig2.Curve {
					if i%20 == 0 || p.Offset == r.Fig2.BestOffset {
						fmt.Fprintf(w, "%+.3f %.4f\n", p.Offset.Seconds(), p.Overlap)
					}
				}
			},
		},
		{
			ID:    "fig3",
			Title: "Number of active parallel RTBHs over time",
			Paper: "78 peers announced 1,107 parallel RTBHs on average for 170 origin ASes; at most 1,400; message rate below 500/min with spikes to 793",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "announcing peers: %d, origin ASes: %d\n", r.Fig3.Peers, r.Fig3.OriginASes)
				fmt.Fprintf(w, "parallel RTBHs: avg %.0f, max %d\n", r.Fig3.AvgActive, r.Fig3.MaxActive)
				fmt.Fprintf(w, "peak message rate: %d msgs/min\n", r.Fig3.MaxMessagesPerMinute)
				fmt.Fprintln(w, "day active_avg msgs_total")
				perDay := map[int][2]int{}
				var days []int
				for _, p := range r.Fig3.Series {
					d := p.Time.YearDay() + 366*p.Time.Year()
					v := perDay[d]
					v[0] += p.Active
					v[1] += p.Messages
					perDay[d] = v
					if v[0] == p.Active {
						days = append(days, d)
					}
				}
				for i, d := range days {
					v := perDay[d]
					fmt.Fprintf(w, "%d %.0f %d\n", i, float64(v[0])/1440, v[1])
				}
			},
		},
		{
			ID:    "fig4",
			Title: "Share of announced blackholes filtered per peer (targeted blackholing)",
			Paper: "early-October excursion: median peer missed up to 6.2%, one peer 10.8%; afterwards at most 0.2% — targeted announcements are the exception",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "peak hidden share: max-peer %.4f, p99 %.4f, median %.4f\n",
					r.Fig4.PeakMax, r.Fig4.PeakP99, r.Fig4.PeakP50)
				fmt.Fprintf(w, "share of announcements with targeting communities: %.4f\n", r.Fig4.TargetedShare)
				fmt.Fprintln(w, "sample max p99 p50 active")
				for i, p := range r.Fig4.Series {
					if i%16 == 0 {
						fmt.Fprintf(w, "%s %.4f %.4f %.4f %d\n",
							p.Time.Format("2006-01-02"), p.Max, p.P99, p.P50, p.Active)
					}
				}
			},
		},
		{
			ID:    "fig5",
			Title: "Dropped-traffic share by RTBH prefix length",
			Paper: "/32 carries 99.9% of blackhole traffic but only ~50% of packets (44% of bytes) are dropped; /22-/24 drop 93-99%; /25-/31 behave like /32",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "average drop rate: %.3f of packets, %.3f of bytes\n", r.Fig5AvgPkts, r.Fig5AvgBytes)
				fmt.Fprintln(w, "len drop_pkts drop_bytes traffic_share pkts")
				for _, row := range r.Fig5 {
					fmt.Fprintf(w, "/%d %.3f %.3f %.5f %d\n",
						row.PrefixLen, row.DropRatePkts(), row.DropRateBytes(),
						row.TrafficSharePkts, row.TotalPkts())
				}
			},
		},
		{
			ID:    "fig6",
			Title: "Distribution of dropped-traffic shares for /24 and /32 blackholes",
			Paper: "/24: 82-100% with median 97%; /32: quartiles 30% / 53% / 88% — host blackholes are unpredictable",
			Render: func(w io.Writer, r *rtbh.Report) {
				printCDF := func(name string, c *rtbh.ECDF) {
					if c.Len() == 0 {
						fmt.Fprintf(w, "%s: no events\n", name)
						return
					}
					fmt.Fprintf(w, "%s (n=%d): q10 %.2f q25 %.2f q50 %.2f q75 %.2f q90 %.2f\n",
						name, c.Len(), c.Quantile(0.10), c.Quantile(0.25),
						c.Quantile(0.50), c.Quantile(0.75), c.Quantile(0.90))
				}
				printCDF("/24", r.Fig6Slash24)
				printCDF("/32", r.Fig6Slash32)
			},
		},
		{
			ID:    "fig7",
			Title: "Reaction of top traffic sources to /32 blackhole routes",
			Paper: "top 100 sources carry >85% of /32 blackhole traffic; 32 drop >99%, 55 forward >99%, 13 inconsistent",
			Render: func(w io.Writer, r *rtbh.Report) {
				c := r.Fig7Classes
				fmt.Fprintf(w, "top %d sources carry %.3f of traffic\n", len(r.Fig7), c.TopShare)
				fmt.Fprintf(w, "acceptors (>99%% dropped): %d\n", c.Acceptors)
				fmt.Fprintf(w, "rejectors (<1%% dropped):  %d\n", c.Rejectors)
				fmt.Fprintf(w, "inconsistent:             %d\n", c.Inconsistent)
				fmt.Fprintln(w, "rank member drop_rate pkts")
				for i, s := range r.Fig7 {
					if i < 20 {
						fmt.Fprintf(w, "%d AS%d %.3f %d\n", i+1, s.Member, s.DropRatePkts(), s.TotalPkts())
					}
				}
			},
		},
		{
			ID:    "fig8",
			Title: "PeeringDB organization types of the top /32-blackhole traffic sources",
			Paper: "most top sources that do not accept blackhole routes are NSPs",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintln(w, "type all non_acceptors")
				keys := make([]string, 0, len(r.Fig8.All))
				for k := range r.Fig8.All {
					keys = append(keys, string(k))
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, "%s %d %d\n", k,
						r.Fig8.All[orgType(k)], r.Fig8.NonAcceptors[orgType(k)])
				}
			},
		},
		{
			ID:    "fig9",
			Title: "Attack and RTBH events: on-off re-announcement pattern (schematic)",
			Paper: "operators withdraw and re-announce blackholes to probe whether the attack is still ongoing",
			Render: func(w io.Writer, r *rtbh.Report) {
				// Realized as code (events.Merge); show the episode-count
				// distribution as evidence of the pattern.
				hist := map[int]int{}
				for _, e := range r.Events {
					b := len(e.Episodes)
					if b > 10 {
						b = 10
					}
					hist[b]++
				}
				fmt.Fprintln(w, "episodes_per_event events (10 = 10+)")
				for b := 1; b <= 10; b++ {
					fmt.Fprintf(w, "%d %d\n", b, hist[b])
				}
			},
		},
		{
			ID:    "fig10",
			Title: "Fraction of blackholing events per announcement vs merge threshold",
			Paper: "400k announcements reduce to 34k events (8.5%) at delta=10min; the last significant drop is at ~10 minutes",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "lower bound (delta=inf): %.4f\n", r.Fig10LowerBound)
				fmt.Fprintln(w, "delta_min events fraction")
				for _, p := range r.Fig10 {
					m := int(p.Delta / time.Minute)
					if m <= 15 || m%5 == 0 {
						fmt.Fprintf(w, "%d %d %.4f\n", m, p.Events, p.Fraction)
					}
				}
			},
		},
		{
			ID:    "fig11",
			Title: "Time slots contributing traffic within 72h before RTBH start",
			Paper: "46% of 34k pre-RTBH windows contain no samples at all; 13k show data in at most 24 slots (2 hours) — very sparse",
			Render: func(w io.Writer, r *rtbh.Report) {
				total := r.Fig11NoData + len(r.Fig11PreDataSlots)
				fmt.Fprintf(w, "pre-RTBH windows: %d, without any samples: %d (%.1f%%)\n",
					total, r.Fig11NoData, 100*float64(r.Fig11NoData)/float64(maxInt(total, 1)))
				buckets := []int{1, 6, 12, 24, 48, 96, 288, 864}
				counts := make([]int, len(buckets))
				for _, n := range r.Fig11PreDataSlots {
					for i, b := range buckets {
						if n <= b {
							counts[i]++
							break
						}
					}
				}
				fmt.Fprintln(w, "slots_with_data(<=) events")
				cum := 0
				for i, b := range buckets {
					cum += counts[i]
					fmt.Fprintf(w, "%d %d\n", b, cum)
				}
			},
		},
		{
			ID:    "fig12",
			Title: "Level and time offset of traffic anomalies before RTBH events",
			Paper: "most anomalies occur up to ten minutes before the first announcement, usually with all five features anomalous",
			Render: func(w io.Writer, r *rtbh.Report) {
				// Matrix: offset bucket x level.
				buckets := []int{2, 6, 12, 72, 288, 864} // slots: 10m, 30m, 1h, 6h, 24h, 72h
				matrix := make([][]int, len(buckets))
				for i := range matrix {
					matrix[i] = make([]int, anomaly.NumFeatures+1)
				}
				for _, a := range r.Fig12 {
					for i, b := range buckets {
						if a.SlotsBefore <= b {
							matrix[i][a.Level]++
							break
						}
					}
				}
				fmt.Fprintln(w, "offset(<=) level1 level2 level3 level4 level5")
				labels := []string{"10m", "30m", "1h", "6h", "24h", "72h"}
				for i := range buckets {
					fmt.Fprintf(w, "%s %d %d %d %d %d\n", labels[i],
						matrix[i][1], matrix[i][2], matrix[i][3], matrix[i][4], matrix[i][5])
				}
			},
		},
		{
			ID:    "fig13",
			Title: "Anomaly amplification factor: last pre-RTBH slot vs window mean",
			Paper: "multiples of up to 800 observed; in 15% of cases the last slot is the maximum of the entire 72h range",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "events where the last slot is the window maximum: %.3f\n", r.Fig13LastSlotMax)
				fmt.Fprintln(w, "feature n q50 q90 q99 max")
				for f := 0; f < anomaly.NumFeatures; f++ {
					xs := append([]float64(nil), r.Fig13[f]...)
					if len(xs) == 0 {
						fmt.Fprintf(w, "%s 0 - - - -\n", anomaly.FeatureNames[f])
						continue
					}
					sort.Float64s(xs)
					fmt.Fprintf(w, "%s %d %.1f %.1f %.1f %.1f\n", anomaly.FeatureNames[f],
						len(xs), quant(xs, 0.5), quant(xs, 0.9), quant(xs, 0.99), xs[len(xs)-1])
				}
			},
		},
		{
			ID:    "fig14",
			Title: "Share of attack packets filterable by the known UDP amplification port list",
			Paper: "90% of anomaly events could be mitigated completely by port-list filtering; the rest use random ports, rotating ports or multiple transports",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "events: %d, fully filterable (>=99%% of packets): %.3f\n",
					len(r.Fig14), r.Fig14FullyFilterable)
				if len(r.Fig14) > 0 {
					fmt.Fprintln(w, "quantile filterable_share")
					for _, q := range []float64{0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 1} {
						fmt.Fprintf(w, "%.2f %.3f\n", q, quant(r.Fig14, q))
					}
				}
			},
		},
		{
			ID:    "fig15",
			Title: "AS participation in UDP amplification attacks",
			Paper: "501 handover ASes (55% of members) and 11,124 origin ASes participate; top origin AS in 60% of events and identical to the top handover AS; ~1,086 amplifiers, ~30 handover and ~73 origin ASes per attack",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "origin ASes: %d, handover ASes: %d\n", r.Fig15Origin.ASes, r.Fig15Handover.ASes)
				fmt.Fprintf(w, "top origin AS%d in %.2f of events; top handover AS%d in %.2f\n",
					r.Fig15Origin.TopAS, top0(r.Fig15Origin), r.Fig15Handover.TopAS, top0(r.Fig15Handover))
				fmt.Fprintf(w, "per attack: %.0f amplifiers, %.1f origin ASes, %.1f handover ASes (n=%d)\n",
					r.Fig15Scale.MeanAmplifiers, r.Fig15Scale.MeanOriginASes,
					r.Fig15Scale.MeanHandoverASes, r.Fig15Scale.Events)
				fmt.Fprintln(w, "rank origin_share handover_share")
				for i := 0; i < 10; i++ {
					o, h := "-", "-"
					if i < len(r.Fig15Origin.Top10) {
						o = fmt.Sprintf("%.3f", r.Fig15Origin.Top10[i])
					}
					if i < len(r.Fig15Handover.Top10) {
						h = fmt.Sprintf("%.3f", r.Fig15Handover.Top10[i])
					}
					fmt.Fprintf(w, "%d %s %s\n", i+1, o, h)
				}
			},
		},
		{
			ID:    "fig16",
			Title: "RadViz projection of blackholed-host port features",
			Paper: "more blackholed addresses show client traffic patterns than server patterns",
			Render: func(w io.Writer, r *rtbh.Report) {
				// Summarize by the dominating anchor of each host.
				counts := make([]int, hosts.NumFeatures)
				origin := 0
				proj := radviz.New(hosts.NumFeatures)
				anchors := proj.Anchors()
				for _, pt := range r.Fig16 {
					if radviz.Radius(pt) < 0.05 {
						origin++
						continue
					}
					best, bestD := 0, math.Inf(1)
					for i, a := range anchors {
						d := (pt.X-a.X)*(pt.X-a.X) + (pt.Y-a.Y)*(pt.Y-a.Y)
						if d < bestD {
							best, bestD = i, d
						}
					}
					counts[best]++
				}
				fmt.Fprintln(w, "dominating_anchor hosts")
				for i, n := range counts {
					fmt.Fprintf(w, "%s %d\n", hosts.FeatureNames[i], n)
				}
				fmt.Fprintf(w, "balanced(near origin) %d\n", origin)
				client := counts[hosts.FeatInDstPorts] + counts[hosts.FeatOutSrcPorts]
				server := counts[hosts.FeatInSrcPorts] + counts[hosts.FeatOutDstPorts]
				fmt.Fprintf(w, "client-like %d vs server-like %d\n", client, server)
			},
		},
		{
			ID:    "fig17",
			Title: "Top-port variation and host classification",
			Paper: "over 4,000 clients and 1,000 stable servers among hosts with >=20 active days",
			Render: func(w io.Writer, r *rtbh.Report) {
				servers, clients := 0, 0
				hist := make([]int, 11)
				for i := range r.Fig17 {
					p := &r.Fig17[i]
					switch p.Kind {
					case hosts.KindServer:
						servers++
					case hosts.KindClient:
						clients++
					}
					b := int(p.PortVariation * 10)
					if b > 10 {
						b = 10
					}
					hist[b]++
				}
				fmt.Fprintf(w, "detected hosts: %d (clients %d, servers %d)\n",
					len(r.Fig17), clients, servers)
				fmt.Fprintln(w, "port_variation hosts")
				for b, n := range hist {
					fmt.Fprintf(w, "%.1f %d\n", float64(b)/10, n)
				}
			},
		},
		{
			ID:    "fig18",
			Title: "Collateral damage: packets to server top ports during RTBH events",
			Paper: "~300 events with collateral damage for ~1,000 detected servers; worst case up to 10^6 packets per event",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "events with collateral damage: %d (max %d sampled packets)\n",
					r.Fig18.Events, r.Fig18.MaxAll)
				fmt.Fprintln(w, "rank all_pkts dropped_pkts (per-event, ascending)")
				n := len(r.Fig18.AllPkts)
				for i := 0; i < n; i += maxInt(n/10, 1) {
					d := int64(0)
					if i < len(r.Fig18.DroppedPkts) {
						d = r.Fig18.DroppedPkts[i]
					}
					fmt.Fprintf(w, "%d %d %d\n", i, r.Fig18.AllPkts[i], d)
				}
			},
		},
		{
			ID:    "fig19",
			Title: "RTBH event classification by use case",
			Paper: "~27% infrastructure protection (DDoS anomaly), squatting for 4 ASes / 21 prefixes, 13% /32 zombies with <10 packets, ~60% unexplained 'other'",
			Render: func(w io.Writer, r *rtbh.Report) {
				order := []usecase.Class{
					usecase.ClassInfrastructureProtection, usecase.ClassSquattingProtection,
					usecase.ClassZombie, usecase.ClassContentBlocking, usecase.ClassOther,
				}
				fmt.Fprintln(w, "class events share median_duration")
				for _, c := range order {
					ds := r.Fig19.Durations[c]
					med := time.Duration(0)
					if len(ds) > 0 {
						sorted := append([]time.Duration(nil), ds...)
						sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
						med = sorted[len(sorted)/2]
					}
					fmt.Fprintf(w, "%s %d %.3f %v\n", c, r.Fig19.Counts[c], r.Fig19.Shares[c], med.Round(time.Minute))
				}
				fmt.Fprintf(w, "squatting: %d prefixes from %d ASes\n", r.Fig19.SquatPrefixes, r.Fig19.SquatASes)
				fmt.Fprintf(w, "/32 events with <10 packets and no anomaly: %.3f of all\n", r.Fig19.LowTrafficHostShare)
			},
		},
		{
			ID:    "whitelist",
			Title: "Extension: whitelist feasibility during attacks (paper §7.2)",
			Paper: "whitelisting legitimate patterns during an attack is not possible for clients due to highly variable traffic; server patterns are stable",
			Render: func(w io.Writer, r *rtbh.Report) {
				kinds := make(map[uint32]hosts.Kind, len(r.Fig17))
				for i := range r.Fig17 {
					kinds[r.Fig17[i].IP] = r.Fig17[i].Kind
				}
				var srv, cli []float64
				for _, c := range r.Whitelist {
					switch kinds[c.IP] {
					case hosts.KindServer:
						srv = append(srv, c.Share)
					case hosts.KindClient:
						cli = append(cli, c.Share)
					}
				}
				sort.Float64s(srv)
				sort.Float64s(cli)
				median := func(xs []float64) float64 {
					if len(xs) == 0 {
						return math.NaN()
					}
					return xs[len(xs)/2]
				}
				fmt.Fprintf(w, "median whitelist coverage of daily incoming traffic:\n")
				fmt.Fprintf(w, "  servers (n=%d): %.2f\n", len(srv), median(srv))
				fmt.Fprintf(w, "  clients (n=%d): %.2f\n", len(cli), median(cli))
				fmt.Fprintf(w, "a top-port whitelist protects servers but not clients\n")
			},
		},
		{
			ID:    "table1",
			Title: "Expected RTBH characteristics per use case (literature-based)",
			Paper: "descriptive matrix; encoded verbatim as classifier expectations",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintln(w, "use_case | trigger | prefix | latency | duration | traffic | target")
				for _, row := range usecase.Table1 {
					fmt.Fprintf(w, "%s | %s | %s | %s | %s | %s | %s\n",
						row.UseCase, row.Trigger, row.PrefixLength, row.ReactionLatency,
						row.Duration, row.Traffic, row.Target)
				}
			},
		},
		{
			ID:    "table2",
			Title: "Class distribution of pre-RTBH events",
			Paper: "no data 46%; data without anomaly (<=10min) 27%; data with anomaly <=10min 27%",
			Render: func(w io.Writer, r *rtbh.Report) {
				total := float64(maxInt(r.Table2.Total(), 1))
				fmt.Fprintln(w, "class events share")
				fmt.Fprintf(w, "no-data %d %.3f\n", r.Table2.NoData, float64(r.Table2.NoData)/total)
				fmt.Fprintf(w, "data-no-anomaly %d %.3f\n", r.Table2.DataNoAnomaly, float64(r.Table2.DataNoAnomaly)/total)
				fmt.Fprintf(w, "data-anomaly-10min %d %.3f\n", r.Table2.DataAnomaly10Min, float64(r.Table2.DataAnomaly10Min)/total)
				fmt.Fprintf(w, "events with during-event data: %d; anomaly+data: %d\n",
					r.EventsWithData, r.AnomalyAndData)
			},
		},
		{
			ID:    "table3",
			Title: "Distinct UDP amplification protocols per anomaly event with data",
			Paper: "0: 6%, 1: 40%, 2: 45%, 3: 8.3%, 4: 0.6%, 5: 0.1%; protocol mix 99.5% UDP",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "events: %d\n", r.Table3Events)
				fmt.Fprintln(w, "protocols share")
				for k, v := range r.Table3 {
					label := fmt.Sprintf("%d", k)
					if k == 5 {
						label = "5+"
					}
					fmt.Fprintf(w, "%s %.3f\n", label, v)
				}
				fmt.Fprintf(w, "transport mix: UDP %.4f TCP %.4f ICMP %.4f other %.4f (n=%d pkts)\n",
					r.ProtoShares.UDP, r.ProtoShares.TCP, r.ProtoShares.ICMP,
					r.ProtoShares.Other, r.ProtoShares.Packets)
			},
		},
		{
			ID:    "table4",
			Title: "PeeringDB types of detected client and server hosts",
			Paper: "4,057 clients / 1,036 servers; clients: 60% Cable/DSL/ISP; servers: 34% Content",
			Render: func(w io.Writer, r *rtbh.Report) {
				fmt.Fprintf(w, "clients: %d, servers: %d\n", r.Table4.Clients, r.Table4.Servers)
				types := []string{"Content", "Cable/DSL/ISP", "NSP", "Enterprise", "Unknown"}
				fmt.Fprintln(w, "type clients servers")
				for _, typ := range types {
					fmt.Fprintf(w, "%s %.2f %.2f\n", typ,
						r.Table4.ClientTypes[orgType(typ)], r.Table4.ServerTypes[orgType(typ)])
				}
			},
		},
		{
			ID:    "table5",
			Title: "Attack vs legitimate traffic dropped per mitigation type",
			Paper: "RTBH discards everything toward the victim, legitimate traffic included; fine-grained filtering (BGP FlowSpec) drops the attack while sparing legitimate flows",
			Render: func(w io.Writer, r *rtbh.Report) {
				t5 := r.Table5
				if t5 == nil {
					fmt.Fprintln(w, "not composed")
					return
				}
				if !t5.Measured() {
					fmt.Fprintln(w, "no mitigated traffic measured (simulate with -mitigation to enable FlowSpec scenarios)")
					return
				}
				fmt.Fprintln(w, "type prefixes attack_dropped attack_pkts legit_dropped legit_pkts")
				for i := range t5.Rows {
					row := &t5.Rows[i]
					fmt.Fprintf(w, "%s %d %.3f %d %.3f %d\n", row.Phase, row.Prefixes,
						row.Attack.DropRatePkts(), row.Attack.TotalPkts(),
						row.Legit.DropRatePkts(), row.Legit.TotalPkts())
				}
			},
		},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RenderAll prints every experiment with headers.
func RenderAll(w io.Writer, r *rtbh.Report) {
	for _, e := range All() {
		RenderOne(w, r, e)
	}
}

// RenderOne prints a single experiment with its header and paper note.
func RenderOne(w io.Writer, r *rtbh.Report, e Experiment) {
	fmt.Fprintf(w, "== %s: %s ==\n", strings.ToUpper(e.ID), e.Title)
	fmt.Fprintf(w, "paper: %s\n", e.Paper)
	e.Render(w, r)
	fmt.Fprintln(w)
}

func quant(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func top0(p rtbh.Participation) float64 {
	if len(p.Top10) == 0 {
		return 0
	}
	return p.Top10[0]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// orgType converts a string label into the registry's type key.
func orgType(s string) peeringdb.OrgType { return peeringdb.OrgType(s) }
