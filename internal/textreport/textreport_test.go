package textreport

import (
	"bytes"
	"strings"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/analysis/usecase"
	"repro/internal/stats"
)

// emptyReport builds a structurally valid but dataless report: every
// renderer must tolerate it without panicking (real-world datasets can be
// arbitrarily sparse).
func emptyReport() *rtbh.Report {
	cfg := rtbh.TestConfig()
	return &rtbh.Report{
		Fig2:        &rtbh.TimeAlignResult{},
		Fig3:        &rtbh.LoadResult{},
		Fig4:        &rtbh.VisibilityResult{},
		Fig18:       &rtbh.CollateralResult{},
		Fig19:       usecase.Classify(nil, nil, cfg.End()),
		Fig6Slash24: stats.NewECDF(nil),
		Fig6Slash32: stats.NewECDF(nil),
	}
}

func TestAllExperimentsHaveUniqueIDsAndMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Paper == "" || e.Render == nil {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	// Every figure and table of the evaluation is present.
	for _, id := range []string{
		"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"fig17", "fig18", "fig19", "table1", "table2", "table3", "table4",
		"whitelist",
	} {
		if !seen[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
}

func TestByID(t *testing.T) {
	if e, ok := ByID("fig6"); !ok || e.ID != "fig6" {
		t.Fatalf("ByID(fig6) = %+v, %v", e, ok)
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestRenderAllToleratesEmptyReport(t *testing.T) {
	var buf bytes.Buffer
	RenderAll(&buf, emptyReport())
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, strings.ToUpper(e.ID)+":") {
			t.Fatalf("output missing header for %s", e.ID)
		}
		if !strings.Contains(out, e.Paper[:20]) {
			t.Fatalf("output missing paper note for %s", e.ID)
		}
	}
}

func TestRenderOneHeaders(t *testing.T) {
	e, _ := ByID("table2")
	var buf bytes.Buffer
	RenderOne(&buf, emptyReport(), e)
	if !strings.Contains(buf.String(), "== TABLE2:") {
		t.Fatalf("header missing: %q", buf.String())
	}
}

// TestRenderAllWithRealReport exercises the populated rendering paths
// against an actual (tiny) simulated dataset.
func TestRenderAllWithRealReport(t *testing.T) {
	dir := t.TempDir()
	cfg := rtbh.TestConfig()
	cfg.Days = 6
	cfg.EventsTotal = 80
	cfg.UniqueVictims = 40
	cfg.Members = 40
	cfg.RTBHUsers = 8
	cfg.VictimOriginASes = 10
	cfg.RemoteOriginASes = 100
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 100 * time.Millisecond
	report, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderAll(&buf, report)
	out := buf.String()
	for _, want := range []string{
		"best offset", "parallel RTBHs", "average drop rate",
		"pre-RTBH windows", "class events share", "transport mix",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("populated output missing %q", want)
		}
	}
}
