package rtbh

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/fabric"
	"repro/internal/faultnet"
	"repro/internal/ipfix"
	"repro/internal/live"
	"repro/internal/mrt"
	"repro/internal/routeserver"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// LiveRun is one live-mode run of a planned world: instead of feeding
// the route server and the archive writers in-process the way Simulate
// does, every control update crosses a real BGP-over-TCP session and
// every sampled flow record is exported as RFC 7011 IPFIX over UDP to a
// collector, which writes the archives and feeds an OnlineAnalyzer.
// The archived dataset is byte-identical to Simulate's for the same
// Config (see DESIGN.md, "Live mode").
//
// Construct with NewLiveRun, inspect progress through Analyzer, then
// Run once. Cancelling Run's context interrupts the run gracefully: the
// in-flight streams drain, the archive holds the delivered prefix of
// the run, and the analyzer reports over exactly that prefix.
type LiveRun struct {
	cfg      Config
	dir      string
	reg      *MetricsRegistry
	w        *scenario.World
	analyzer *OnlineAnalyzer
	lm       *live.Metrics
	plan     *faultnet.Plan

	ran         bool
	interrupted bool
}

// ChaosProfiles lists the fault-injection profile names accepted by
// EnableChaos and the -chaos-profile flag.
func ChaosProfiles() []string { return faultnet.ProfileNames() }

// NewLiveRun plans the world described by cfg and prepares the online
// analyzer. Nothing is written and no sockets open until Run. When reg
// is non-nil the live transports register their metrics ("live.*") on
// it immediately, and the route server and fabric add theirs
// ("routeserver.*", "fabric.*") during Run.
func NewLiveRun(cfg Config, dir string, reg *MetricsRegistry) (*LiveRun, error) {
	w, err := scenario.Plan(cfg)
	if err != nil {
		return nil, err
	}
	lm := live.NewMetrics()
	analyzer := NewOnlineAnalyzer(analysisMeta(w))
	if reg != nil {
		lm.Register(reg)
		analyzer.RegisterMetrics(reg)
	}
	return &LiveRun{
		cfg:      cfg,
		dir:      dir,
		reg:      reg,
		w:        w,
		analyzer: analyzer,
		lm:       lm,
	}, nil
}

// Analyzer returns the run's online analyzer. Snapshot it at any time —
// before, during or after Run. The looking-glass serving layer
// (internal/serve, rtbh-live -serve) mounts its HTTP API over exactly
// this analyzer: every endpoint is a cached view of its Snapshot.
func (lr *LiveRun) Analyzer() *OnlineAnalyzer { return lr.analyzer }

// Config returns the configuration the run was planned with; the
// serving layer's health endpoint reports it so clients can tell which
// world they are looking at.
func (lr *LiveRun) Config() Config { return lr.cfg }

// EnableChaos arms a seeded fault-injection plan for the run: the given
// profile's impairments are applied to the BGP/TCP sessions and the
// IPFIX/UDP export path, scheduled deterministically from seed (see
// internal/faultnet). Call before Run. The plan's injection counters
// register on the run's metrics registry under "faultnet.*", so a
// snapshot reconciles injected faults against observed recovery.
func (lr *LiveRun) EnableChaos(seed uint64, profile string) error {
	if lr.ran {
		return fmt.Errorf("rtbh: live run already executed")
	}
	p, err := faultnet.ParseProfile(profile)
	if err != nil {
		return err
	}
	lr.plan = faultnet.NewPlan(seed, p)
	if lr.reg != nil {
		lr.plan.M.Register(lr.reg)
	}
	return nil
}

// ChaosJournal renders every fault the plan injected, grouped by stream:
// byte-identical across runs with the same seed, profile and Config. It
// is empty until Run and when chaos is not enabled.
func (lr *LiveRun) ChaosJournal() string {
	if lr.plan == nil {
		return ""
	}
	return lr.plan.Journal()
}

// Interrupted reports whether Run ended early because its context was
// cancelled (the dataset then covers the delivered prefix of the run).
func (lr *LiveRun) Interrupted() bool { return lr.interrupted }

// Run drives the planned world through the live transports and writes
// the same dataset files as Simulate into the run's directory. It
// returns after the streams have drained, the shutdown invariants have
// been reconciled (every sent update delivered; every exported record
// collected or accounted as dropped) and the archives are flushed.
//
// Cancelling ctx stops dispatching, drains what is in flight, and
// returns normally with Interrupted() set; any other failure is an
// error.
func (lr *LiveRun) Run(ctx context.Context) (*SimulationSummary, error) {
	if lr.ran {
		return nil, fmt.Errorf("rtbh: live run already executed")
	}
	lr.ran = true
	w := lr.w

	if err := os.MkdirAll(lr.dir, 0o755); err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	mrtFile, err := os.Create(filepath.Join(lr.dir, FileUpdates))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	defer mrtFile.Close()
	mrtW := mrt.NewWriter(mrtFile)

	flowFile, err := os.Create(filepath.Join(lr.dir, FileFlows))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	defer flowFile.Close()
	flowW := ipfix.NewWriter(flowFile, 1)

	// rs and fb are assigned inside Drive's build callback, strictly
	// before the runner carries any traffic that reaches these closures.
	var (
		rs *routeserver.Server
		fb *fabric.Fabric
	)

	// rsMu serializes route-server access: deliveries arrive on the
	// sequencer's delivery goroutine, peer flushes on per-session
	// listener goroutines, and the route server itself is not
	// concurrency-safe.
	var rsMu sync.Mutex

	// Delivered updates (totally ordered by the sequencer) go to the
	// route server — whose collector hook archives the re-encoded wire
	// message, byte-identical to the batch path — and to the analyzer.
	deliver := func(ts time.Time, peer uint32, upd *bgp.Update) error {
		rsMu.Lock()
		_, err := rs.Process(ts, peer, upd)
		rsMu.Unlock()
		if err != nil {
			return err
		}
		lr.analyzer.ObserveUpdate(ts, peer, upd)
		return nil
	}
	// Ungraceful session loss flushes the peer's routes, exactly like a
	// production route server would. The orderly Cease at shutdown does
	// not take this path.
	onPeerFlush := func(peer uint32) {
		rsMu.Lock()
		rs.PeerDown(peer)
		rsMu.Unlock()
	}
	// Collected flow records (in export order) feed the archive and the
	// analyzer.
	flowSink := func(rec *ipfix.FlowRecord) error {
		if err := flowW.WriteRecord(rec); err != nil {
			return err
		}
		lr.analyzer.ObserveFlow(rec)
		return nil
	}

	rcfg := live.RunnerConfig{Fault: lr.plan}
	if lr.plan != nil {
		// Chaos tuning: reconnect fast enough that injected kills heal
		// well inside the restart tolerance, with a hold time that
		// injected stalls (≤2ms) can never expire.
		rcfg.Session = live.SessionConfig{
			HoldTime:     30 * time.Second,
			ReconnectMin: 2 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
		}
	}
	runner, err := live.NewRunner(ctx, rcfg, lr.lm, deliver, onPeerFlush, flowSink)
	if err != nil {
		return nil, err
	}
	defer runner.Shutdown()

	var flowCount int64
	st, driveErr := scenario.Drive(w, func(fabricRNG *stats.RNG) (scenario.Executor, error) {
		if rs, err = scenario.NewRouteServer(w); err != nil {
			return nil, err
		}
		rs.SetCollector(func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
			rec := mrt.Record{
				Timestamp: ts, PeerAS: peerAS, LocalAS: uint32(w.RSASN),
				PeerIP: peerIP, LocalIP: w.RSIP, Message: msg,
			}
			// Write errors surface at Flush below, as in Simulate.
			_ = mrtW.WriteRecord(&rec)
		})
		fb, err = fabric.New(rs, w.Cfg.SamplingRate, fabricRNG, func(rec *ipfix.FlowRecord) error {
			flowCount++
			return runner.ExportFlow(rec)
		})
		if err != nil {
			return nil, err
		}
		fb.ClockOffset = w.Cfg.ClockOffset
		if lr.reg != nil {
			rs.RegisterMetrics(lr.reg)
			fb.RegisterMetrics(lr.reg)
		}
		runner.SetRouteServerASN(uint32(w.RSASN))
		return liveExecutor{r: runner, fb: fb}, nil
	})
	if driveErr != nil {
		if !errors.Is(driveErr, context.Canceled) && !errors.Is(driveErr, context.DeadlineExceeded) {
			return nil, driveErr
		}
		lr.interrupted = true
	}
	if st == nil { // Drive returns no stats when build itself failed
		st = &scenario.DriveStats{}
	}

	// Drain what is in flight even on an interrupted run, so the archive
	// and the analyzer agree on the delivered prefix.
	if err := runner.Drain(); err != nil {
		return nil, err
	}
	if err := runner.Reconcile(); err != nil {
		return nil, err
	}
	if err := runner.Shutdown(); err != nil {
		return nil, err
	}

	if err := mrtW.Flush(); err != nil {
		return nil, fmt.Errorf("rtbh: flushing MRT: %w", err)
	}
	if err := flowW.Flush(); err != nil {
		return nil, fmt.Errorf("rtbh: flushing IPFIX: %w", err)
	}
	if err := writeJSON(filepath.Join(lr.dir, FileMetadata), metaOf(w)); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(lr.dir, FileIP2AS), w.IP2AS.WriteJSON); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(lr.dir, FilePDB), w.PDB.WriteJSON); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(lr.dir, FileTruth), scenario.Truth(w).WriteJSON); err != nil {
		return nil, err
	}

	fst := fb.Stats()
	return &SimulationSummary{
		Events:         len(w.Events),
		Hosts:          len(w.Hosts),
		Members:        len(w.Members),
		ControlMsgs:    rs.MessagesProcessed(),
		Announcements:  st.Announcements,
		Withdrawals:    st.Withdrawals,
		FlowRecords:    flowCount,
		PacketsIn:      fst.PacketsIn,
		PacketsDropped: fst.PacketsDropped,
	}, nil
}

// liveExecutor dispatches the scenario driver's action stream onto the
// live transports. Control is asynchronous (the update crosses a real
// TCP session); the barrier before every Inject restores the batch
// path's "control completes before the next batch" invariant, so the
// fabric always sees the forwarding state the driver intended.
type liveExecutor struct {
	r  *live.Runner
	fb *fabric.Fabric
}

func (e liveExecutor) Control(ts time.Time, peerAS uint32, upd *bgp.Update) error {
	return e.r.SendUpdate(ts, peerAS, upd)
}

func (e liveExecutor) Inject(b *fabric.Batch) error {
	if err := e.r.Barrier(); err != nil {
		return err
	}
	return e.fb.Inject(b)
}

// analysisMeta builds the analyzer-side metadata directly from the
// planned world — the same values OpenDataset reconstructs from the
// dataset's metadata.json and side tables.
func analysisMeta(w *scenario.World) *analysis.Metadata {
	meta := &analysis.Metadata{
		SamplingRate: w.Cfg.SamplingRate,
		Start:        w.Cfg.Start,
		End:          w.Cfg.End(),
		MemberByMAC:  make(map[ipfix.MAC]uint32, len(w.Members)),
		BlackholeMAC: fabric.BlackholeMAC,
		InternalMACs: map[ipfix.MAC]bool{fabric.InternalMAC: true},
		IP2AS:        w.IP2AS,
		PDB:          w.PDB,
	}
	for _, m := range w.Members {
		meta.MemberByMAC[fabric.MemberMAC(m.ASN)] = m.ASN
	}
	return meta
}
