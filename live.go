package rtbh

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/detect"
	"repro/internal/fabric"
	"repro/internal/faultnet"
	"repro/internal/ipfix"
	"repro/internal/live"
	"repro/internal/mrt"
	"repro/internal/routeserver"
	"repro/internal/scenario"
	"repro/internal/stats"
)

// LiveRun is one live-mode run of a planned world: instead of feeding
// the route server and the archive writers in-process the way Simulate
// does, every control update crosses a real BGP-over-TCP session and
// every sampled flow record is exported as RFC 7011 IPFIX over UDP to a
// collector, which writes the archives and feeds an OnlineAnalyzer.
// The archived dataset is byte-identical to Simulate's for the same
// Config (see DESIGN.md, "Live mode").
//
// Construct with NewLiveRun, inspect progress through Analyzer, then
// Run once. Cancelling Run's context interrupts the run gracefully: the
// in-flight streams drain, the archive holds the delivered prefix of
// the run, and the analyzer reports over exactly that prefix.
type LiveRun struct {
	cfg      Config
	dir      string
	reg      *MetricsRegistry
	w        *scenario.World
	analyzer *OnlineAnalyzer
	lm       *live.Metrics
	plan     *faultnet.Plan
	det      *detect.Detector

	ran         bool
	interrupted bool
}

// ChaosProfiles lists the fault-injection profile names accepted by
// EnableChaos and the -chaos-profile flag.
func ChaosProfiles() []string { return faultnet.ProfileNames() }

// NewLiveRun plans the world described by cfg and prepares the online
// analyzer. Nothing is written and no sockets open until Run. When reg
// is non-nil the live transports register their metrics ("live.*") on
// it immediately, and the route server and fabric add theirs
// ("routeserver.*", "fabric.*") during Run.
func NewLiveRun(cfg Config, dir string, reg *MetricsRegistry) (*LiveRun, error) {
	w, err := scenario.Plan(cfg)
	if err != nil {
		return nil, err
	}
	lm := live.NewMetrics()
	analyzer := NewOnlineAnalyzer(analysisMeta(w))
	if reg != nil {
		lm.Register(reg)
		analyzer.RegisterMetrics(reg)
	}
	return &LiveRun{
		cfg:      cfg,
		dir:      dir,
		reg:      reg,
		w:        w,
		analyzer: analyzer,
		lm:       lm,
	}, nil
}

// Analyzer returns the run's online analyzer. Snapshot it at any time —
// before, during or after Run. The looking-glass serving layer
// (internal/serve, rtbh-live -serve) mounts its HTTP API over exactly
// this analyzer: every endpoint is a cached view of its Snapshot.
func (lr *LiveRun) Analyzer() *OnlineAnalyzer { return lr.analyzer }

// Config returns the configuration the run was planned with; the
// serving layer's health endpoint reports it so clients can tell which
// world they are looking at.
func (lr *LiveRun) Config() Config { return lr.cfg }

// EnableChaos arms a seeded fault-injection plan for the run: the given
// profile's impairments are applied to the BGP/TCP sessions and the
// IPFIX/UDP export path, scheduled deterministically from seed (see
// internal/faultnet). Call before Run. The plan's injection counters
// register on the run's metrics registry under "faultnet.*", so a
// snapshot reconciles injected faults against observed recovery.
func (lr *LiveRun) EnableChaos(seed uint64, profile string) error {
	if lr.ran {
		return fmt.Errorf("rtbh: live run already executed")
	}
	p, err := faultnet.ParseProfile(profile)
	if err != nil {
		return err
	}
	lr.plan = faultnet.NewPlan(seed, p)
	if lr.reg != nil {
		lr.plan.M.Register(lr.reg)
	}
	return nil
}

// EnableDetector arms the closed-loop DRDoS detector for the run: every
// collected flow record also feeds a streaming rate/vector sketch, and
// when a victim's estimated packet rate crosses cfg.Threshold the
// detector originates an RTBH announcement for the victim /32 through
// the route server as its own mitigation peer (AS detect.PeerASN),
// withdrawing it once the attack has been quiet for cfg.Cooldown. Call
// before Run. The run's sampling rate and blackhole MAC are filled in
// from the planned world; cfg.SamplingRate and cfg.BlackholeMAC are
// ignored. Detector metrics ("detect.*") register on the run's registry.
//
// The detector is strictly opt-in: without it the archived dataset is
// byte-identical to Simulate's, with it the archive additionally holds
// the mitigation peer's announcements.
func (lr *LiveRun) EnableDetector(cfg detect.Config) error {
	if lr.ran {
		return fmt.Errorf("rtbh: live run already executed")
	}
	cfg.SamplingRate = lr.w.Cfg.SamplingRate
	cfg.BlackholeMAC = fabric.BlackholeMAC
	if cfg.TrafficScale == 0 {
		cfg.TrafficScale = lr.w.Cfg.Scale()
	}
	d, err := detect.New(cfg)
	if err != nil {
		return err
	}
	lr.det = d
	if lr.reg != nil {
		d.RegisterMetrics(lr.reg)
	}
	return nil
}

// Detector returns the run's detector, nil unless EnableDetector was
// called. Its Status is safe to read at any time; the serving layer's
// /api/detections endpoint is a view of it.
func (lr *LiveRun) Detector() *detect.Detector { return lr.det }

// AttackTruth extracts the ground-truth DDoS attacks from the planned
// world in the detector evaluation's shape: victim address, real span
// and intensity per attack event.
func (lr *LiveRun) AttackTruth() []detect.TruthAttack {
	var out []detect.TruthAttack
	for _, e := range lr.w.Events {
		if e.Attack == nil {
			continue
		}
		// Victim address, mirroring the scenario driver's choice: the
		// event host's address, or the first host address inside a
		// squatting prefix.
		victim := e.Prefix.Addr + 1
		if e.Host >= 0 {
			victim = lr.w.Hosts[e.Host].IP
		}
		out = append(out, detect.TruthAttack{
			EventID: e.ID,
			Victim:  victim,
			Start:   e.Attack.Start,
			End:     e.Attack.End(),
			PPS:     e.Attack.PPS,
		})
	}
	return out
}

// EvaluateDetections scores the detector's log against the planned
// ground truth (see detect.Evaluate). It returns nil when the detector
// was never enabled.
func (lr *LiveRun) EvaluateDetections(slack time.Duration) *detect.Eval {
	if lr.det == nil {
		return nil
	}
	return detect.Evaluate(lr.det.Status().Detections, lr.AttackTruth(), slack)
}

// ChaosJournal renders every fault the plan injected, grouped by stream:
// byte-identical across runs with the same seed, profile and Config. It
// is empty until Run and when chaos is not enabled.
func (lr *LiveRun) ChaosJournal() string {
	if lr.plan == nil {
		return ""
	}
	return lr.plan.Journal()
}

// Interrupted reports whether Run ended early because its context was
// cancelled (the dataset then covers the delivered prefix of the run).
func (lr *LiveRun) Interrupted() bool { return lr.interrupted }

// Run drives the planned world through the live transports and writes
// the same dataset files as Simulate into the run's directory. It
// returns after the streams have drained, the shutdown invariants have
// been reconciled (every sent update delivered; every exported record
// collected or accounted as dropped) and the archives are flushed.
//
// Cancelling ctx stops dispatching, drains what is in flight, and
// returns normally with Interrupted() set; any other failure is an
// error.
func (lr *LiveRun) Run(ctx context.Context) (*SimulationSummary, error) {
	if lr.ran {
		return nil, fmt.Errorf("rtbh: live run already executed")
	}
	lr.ran = true
	w := lr.w

	if err := os.MkdirAll(lr.dir, 0o755); err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	mrtFile, err := os.Create(filepath.Join(lr.dir, FileUpdates))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	defer mrtFile.Close()
	mrtW := mrt.NewWriter(mrtFile)

	flowFile, err := os.Create(filepath.Join(lr.dir, FileFlows))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	defer flowFile.Close()
	flowW := ipfix.NewWriter(flowFile, 1)

	// rs and fb are assigned inside Drive's build callback, strictly
	// before the runner carries any traffic that reaches these closures.
	var (
		rs *routeserver.Server
		fb *fabric.Fabric
	)

	// rsMu serializes route-server access: deliveries arrive on the
	// sequencer's delivery goroutine, peer flushes on per-session
	// listener goroutines, and the route server itself is not
	// concurrency-safe.
	var rsMu sync.Mutex

	// Delivered updates (totally ordered by the sequencer) go to the
	// route server — whose collector hook archives the re-encoded wire
	// message, byte-identical to the batch path — and to the analyzer.
	deliver := func(ts time.Time, peer uint32, upd *bgp.Update) error {
		rsMu.Lock()
		_, err := rs.Process(ts, peer, upd)
		rsMu.Unlock()
		if err != nil {
			return err
		}
		lr.analyzer.ObserveUpdate(ts, peer, upd)
		return nil
	}
	// Ungraceful session loss flushes the peer's routes, exactly like a
	// production route server would. The orderly Cease at shutdown does
	// not take this path.
	onPeerFlush := func(peer uint32) {
		rsMu.Lock()
		rs.PeerDown(peer)
		rsMu.Unlock()
	}
	// Collected flow records (in export order) feed the archive and the
	// analyzer.
	flowSink := func(b *ipfix.RecordBatch) error {
		if err := flowW.WriteBatch(b); err != nil {
			return err
		}
		lr.analyzer.ObserveFlowBatch(b)
		if lr.det != nil {
			lr.det.ObserveFlowBatch(b)
		}
		return nil
	}

	rcfg := live.RunnerConfig{Fault: lr.plan}
	if lr.plan != nil {
		// Chaos tuning: reconnect fast enough that injected kills heal
		// well inside the restart tolerance, with a hold time that
		// injected stalls (≤2ms) can never expire.
		rcfg.Session = live.SessionConfig{
			HoldTime:     30 * time.Second,
			ReconnectMin: 2 * time.Millisecond,
			ReconnectMax: 50 * time.Millisecond,
		}
	}
	runner, err := live.NewRunner(ctx, rcfg, lr.lm, deliver, onPeerFlush, flowSink)
	if err != nil {
		return nil, err
	}
	defer runner.Shutdown()

	var flowCount int64
	st, driveErr := scenario.Drive(w, func(fabricRNG *stats.RNG) (scenario.Executor, error) {
		if rs, err = scenario.NewRouteServer(w); err != nil {
			return nil, err
		}
		if lr.det != nil {
			// The detector peers with the route server like any member:
			// its announcements cross a real BGP session and are archived
			// by the collector hook exactly like operator-originated RTBH.
			if err := rs.AddPeer(routeserver.Peer{
				ASN:    detect.PeerASN,
				IP:     w.RSIP + 0xFFFD,
				Policy: routeserver.DefaultPolicy(),
			}); err != nil {
				return nil, err
			}
		}
		rs.SetCollector(func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
			rec := mrt.Record{
				Timestamp: ts, PeerAS: peerAS, LocalAS: uint32(w.RSASN),
				PeerIP: peerIP, LocalIP: w.RSIP, Message: msg,
			}
			// Write errors surface at Flush below, as in Simulate.
			_ = mrtW.WriteRecord(&rec)
		})
		fb, err = fabric.New(rs, w.Cfg.SamplingRate, fabricRNG, func(b *ipfix.RecordBatch) error {
			flowCount += int64(b.Len())
			return runner.ExportFlowBatch(b)
		})
		if err != nil {
			return nil, err
		}
		fb.ClockOffset = w.Cfg.ClockOffset
		if lr.reg != nil {
			rs.RegisterMetrics(lr.reg)
			fb.RegisterMetrics(lr.reg)
		}
		runner.SetRouteServerASN(uint32(w.RSASN))
		return liveExecutor{r: runner, fb: fb, det: lr.det}, nil
	})
	if driveErr != nil {
		if !errors.Is(driveErr, context.Canceled) && !errors.Is(driveErr, context.DeadlineExceeded) {
			return nil, driveErr
		}
		lr.interrupted = true
	}
	if st == nil { // Drive returns no stats when build itself failed
		st = &scenario.DriveStats{}
	}

	// Close the mitigation loop: a final detector tick at the end of the
	// scenario clock dispatches any pending announcements and withdraws
	// blackholes whose cooldown has expired, so the archive records the
	// full announce/withdraw lifecycle. Skipped on interruption — the
	// runner refuses new updates once its context is cancelled.
	if lr.det != nil && !lr.interrupted {
		ex := liveExecutor{r: runner, fb: fb, det: lr.det}
		if err := ex.dispatchDetections(w.Cfg.End()); err != nil {
			return nil, err
		}
		if err := runner.Barrier(); err != nil {
			return nil, err
		}
	}

	// Drain what is in flight even on an interrupted run, so the archive
	// and the analyzer agree on the delivered prefix.
	if err := runner.Drain(); err != nil {
		return nil, err
	}
	if err := runner.Reconcile(); err != nil {
		return nil, err
	}
	if err := runner.Shutdown(); err != nil {
		return nil, err
	}

	if err := mrtW.Flush(); err != nil {
		return nil, fmt.Errorf("rtbh: flushing MRT: %w", err)
	}
	if err := flowW.Flush(); err != nil {
		return nil, fmt.Errorf("rtbh: flushing IPFIX: %w", err)
	}
	if err := writeJSON(filepath.Join(lr.dir, FileMetadata), metaOf(w)); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(lr.dir, FileIP2AS), w.IP2AS.WriteJSON); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(lr.dir, FilePDB), w.PDB.WriteJSON); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(lr.dir, FileTruth), scenario.Truth(w).WriteJSON); err != nil {
		return nil, err
	}

	fst := fb.Stats()
	return &SimulationSummary{
		Events:         len(w.Events),
		Hosts:          len(w.Hosts),
		Members:        len(w.Members),
		ControlMsgs:    rs.MessagesProcessed(),
		Announcements:  st.Announcements,
		Withdrawals:    st.Withdrawals,
		FlowRecords:    flowCount,
		PacketsIn:      fst.PacketsIn,
		PacketsDropped: fst.PacketsDropped,
	}, nil
}

// liveExecutor dispatches the scenario driver's action stream onto the
// live transports. Control is asynchronous (the update crosses a real
// TCP session); the barrier before every Inject restores the batch
// path's "control completes before the next batch" invariant, so the
// fabric always sees the forwarding state the driver intended.
type liveExecutor struct {
	r   *live.Runner
	fb  *fabric.Fabric
	det *detect.Detector
}

func (e liveExecutor) Control(ts time.Time, peerAS uint32, upd *bgp.Update) error {
	if err := e.dispatchDetections(ts); err != nil {
		return err
	}
	return e.r.SendUpdate(ts, peerAS, upd)
}

func (e liveExecutor) Inject(b *fabric.Batch) error {
	if err := e.dispatchDetections(b.Time); err != nil {
		return err
	}
	if err := e.r.Barrier(); err != nil {
		return err
	}
	return e.fb.Inject(b)
}

// dispatchDetections advances the detector's mitigation clock to now and
// sends every action it queued as a BGP UPDATE from the mitigation
// peer. Announcements carry the blackhole community and next hop, so
// the route server accepts and archives them exactly like
// operator-originated RTBH; the fabric then drops the victim's traffic
// from the next injected batch on (the barrier in Inject orders the
// announcement ahead of the traffic it protects against).
func (e liveExecutor) dispatchDetections(now time.Time) error {
	if e.det == nil {
		return nil
	}
	for _, a := range e.det.Tick(now) {
		upd := &bgp.Update{}
		p := bgp.HostPrefix(a.Victim)
		if a.Announce {
			upd.Attrs = bgp.PathAttrs{
				Origin:      bgp.OriginIGP,
				ASPath:      []uint32{detect.PeerASN},
				NextHop:     routeserver.BlackholeNextHop,
				Communities: bgp.Communities{bgp.Blackhole},
			}
			upd.NLRI = []bgp.Prefix{p}
		} else {
			upd.Withdrawn = []bgp.Prefix{p}
		}
		if err := e.r.SendUpdate(a.Time, detect.PeerASN, upd); err != nil {
			return err
		}
	}
	return nil
}

// analysisMeta builds the analyzer-side metadata directly from the
// planned world — the same values OpenDataset reconstructs from the
// dataset's metadata.json and side tables.
func analysisMeta(w *scenario.World) *analysis.Metadata {
	meta := &analysis.Metadata{
		SamplingRate: w.Cfg.SamplingRate,
		Start:        w.Cfg.Start,
		End:          w.Cfg.End(),
		MemberByMAC:  make(map[ipfix.MAC]uint32, len(w.Members)),
		BlackholeMAC: fabric.BlackholeMAC,
		InternalMACs: map[ipfix.MAC]bool{fabric.InternalMAC: true},
		IP2AS:        w.IP2AS,
		PDB:          w.PDB,
	}
	for _, m := range w.Members {
		meta.MemberByMAC[fabric.MemberMAC(m.ASN)] = m.ASN
	}
	return meta
}
