package rtbh_test

import (
	"context"
	"testing"

	rtbh "repro"
)

// benchLiveRun drives one full live run per iteration and reports
// end-to-end flow throughput. profile "" runs without chaos at all;
// "none" installs the fault wrappers with an empty schedule, so
// comparing BenchmarkLiveClean with BenchmarkLiveWithChaos/none bounds
// the inactive-wrapper overhead (target: ≤2%).
func benchLiveRun(b *testing.B, profile string) {
	b.Helper()
	cfg := chaosConfig()
	var records int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		lr, err := rtbh.NewLiveRun(cfg, dir, nil)
		if err != nil {
			b.Fatal(err)
		}
		if profile != "" {
			if err := lr.EnableChaos(1, profile); err != nil {
				b.Fatal(err)
			}
		}
		sum, err := lr.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		records += sum.FlowRecords
	}
	b.ReportMetric(float64(records)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkLiveClean is the baseline: the live pipeline with no fault
// plan and therefore no wrappers on either transport.
func BenchmarkLiveClean(b *testing.B) { benchLiveRun(b, "") }

// BenchmarkLiveWithChaos measures the live pipeline under fault plans:
// "none" quantifies the cost of the wrappers themselves, the active
// profiles the cost of actually injected faults plus recovery.
func BenchmarkLiveWithChaos(b *testing.B) {
	for _, profile := range []string{"none", "lossy-udp", "flapping-tcp"} {
		b.Run(profile, func(b *testing.B) { benchLiveRun(b, profile) })
	}
}
