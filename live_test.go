package rtbh_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

// TestLiveBatchParity is the live subsystem's end-to-end determinism
// guarantee: the same configuration run through real BGP-over-TCP
// sessions and IPFIX-over-UDP export produces byte-identical archive
// files, and the online analyzer's final report renders byte-identical
// to the batch analysis of the archived dataset. It doubles as the live
// soak smoke: it streams a full test-scale world through the transports
// and asserts clean shutdown with zero queue drops.
func TestLiveBatchParity(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a full test-scale world through live transports")
	}
	cfg := rtbh.TestConfig()
	cfg.Seed = 0x11FE
	// Escalating mitigation puts FlowSpec signaling on the wire too, so
	// the parity guarantee covers the fine-grained path end to end: the
	// rules ride the same BGP sessions and the rendered report includes
	// the measured Table 5.
	cfg.MitigationPolicy = "escalate"

	batchDir, liveDir := t.TempDir(), t.TempDir()
	if _, err := rtbh.Simulate(cfg, batchDir); err != nil {
		t.Fatal(err)
	}

	reg := rtbh.NewMetricsRegistry()
	lr, err := rtbh.NewLiveRun(cfg, liveDir, reg)
	if err != nil {
		t.Fatal(err)
	}
	liveSum, err := lr.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lr.Interrupted() {
		t.Fatal("uninterrupted run reports Interrupted")
	}

	// The archives must be byte-identical to the batch path's.
	for _, name := range []string{rtbh.FileUpdates, rtbh.FileFlows} {
		want, err := os.ReadFile(filepath.Join(batchDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(liveDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s differs: batch %d bytes, live %d bytes", name, len(want), len(got))
		}
	}

	// The live metrics must reconcile: everything sent was delivered,
	// everything exported was collected, and nothing was dropped anywhere.
	snap := reg.Snapshot()
	counter := func(name string) int64 {
		t.Helper()
		if !snap.Has(name) {
			t.Fatalf("metric %s not registered", name)
		}
		return snap.Counter(name)
	}
	for _, name := range []string{
		"live.ipfix.dropped_datagrams", "live.ipfix.dropped_records",
		"live.ipfix.late_msgs", "live.ipfix.decode_errors",
		"live.bgp.hold_expiries", "live.bgp.reconnects",
	} {
		if v := counter(name); v != 0 {
			t.Errorf("%s = %d, want 0", name, v)
		}
	}
	// Every session ended in the orderly Cease at shutdown: the listener
	// saw exactly one (graceful) peer-down per session it established
	// (sessions_established counts both endpoints of each session).
	if downs, est := counter("live.bgp.peer_downs"), counter("live.bgp.sessions_established"); est == 0 || 2*downs != est {
		t.Errorf("peer_downs = %d, sessions_established = %d, want exactly one graceful down per session", downs, est)
	}
	if sent, delivered := counter("live.bgp.updates_sent"), counter("live.bgp.updates_delivered"); sent != delivered || int(sent) != liveSum.ControlMsgs {
		t.Errorf("updates sent %d / delivered %d / processed %d", sent, delivered, liveSum.ControlMsgs)
	}
	if exp, col := counter("live.ipfix.exported_records"), counter("live.ipfix.collected_records"); exp != col || exp != liveSum.FlowRecords {
		t.Errorf("records exported %d / collected %d / summary %d", exp, col, liveSum.FlowRecords)
	}

	// The online analyzer's final report must render byte-identical to
	// the batch analysis of the archived dataset.
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 20 * time.Millisecond
	render := func(rep *rtbh.Report) []byte {
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "records %d/%d/%d/%d events %d\n",
			rep.TotalRecords, rep.InternalRecords,
			rep.AttributedRecords, rep.DroppedRecords, len(rep.Events))
		textreport.RenderAll(&buf, rep)
		return buf.Bytes()
	}

	ds, err := rtbh.OpenDataset(batchDir)
	if err != nil {
		t.Fatal(err)
	}
	batchRep, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	liveRep, err := lr.Analyzer().Final(opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, got := render(batchRep), render(liveRep)
	if !bytes.Equal(got, ref) {
		refLines, gotLines := bytes.Split(ref, []byte("\n")), bytes.Split(got, []byte("\n"))
		for i := range refLines {
			if i >= len(gotLines) || !bytes.Equal(refLines[i], gotLines[i]) {
				t.Fatalf("online report diverges at line %d:\nbatch:  %s\nonline: %s",
					i+1, refLines[i], gotLines[i])
			}
		}
		t.Fatalf("online report has %d extra lines", len(gotLines)-len(refLines))
	}
}

// TestLiveGracefulInterrupt cancels the run's context and expects a
// drained, reconciled, loadable (if early-truncated) dataset rather
// than an error — the SIGINT path of cmd/rtbh-live.
func TestLiveGracefulInterrupt(t *testing.T) {
	cfg := rtbh.TestConfig()
	dir := t.TempDir()
	lr, err := rtbh.NewLiveRun(cfg, dir, nil)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // interrupt before the first dispatch
	sum, err := lr.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !lr.Interrupted() {
		t.Fatal("cancelled run not reported as interrupted")
	}
	if sum.FlowRecords != 0 {
		t.Fatalf("interrupted-at-start run exported %d flow records", sum.FlowRecords)
	}

	// The dataset directory is complete and loadable.
	if _, err := rtbh.OpenDataset(dir); err != nil {
		t.Fatalf("interrupted dataset unloadable: %v", err)
	}
	// The analyzer snapshots cleanly over the empty delivered prefix.
	opts := rtbh.DefaultOptions()
	rep, err := lr.Analyzer().Snapshot(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRecords != 0 || len(rep.Events) != 0 {
		t.Fatalf("empty run reported %d records, %d events", rep.TotalRecords, len(rep.Events))
	}

	// Run is once-only.
	if _, err := lr.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}
