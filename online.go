package rtbh

import (
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/bgp"
	"repro/internal/ipfix"
)

// OnlineAnalyzer accumulates a live run's measurement streams
// incrementally and can produce a Report at any point: a partial
// snapshot while the run is still streaming, or the final report once
// the streams have drained. A report over the complete streams is
// byte-identical (rendered) to analyzing the archived dataset with
// Dataset.Analyze, because both paths feed the same updates and flow
// records through the same pipeline.
//
// ObserveUpdate and ObserveFlow may be called from different
// goroutines (in live mode they are: updates arrive on the route
// server's delivery goroutine, flows on the collector's decode
// goroutine); Snapshot may be called concurrently with both.
type OnlineAnalyzer struct {
	meta *analysis.Metadata

	mu      sync.Mutex
	updates []analysis.ControlUpdate
	flows   []ipfix.FlowRecord
}

// NewOnlineAnalyzer returns an analyzer accumulating against the given
// dataset metadata (side tables, sampling rate, measurement period).
func NewOnlineAnalyzer(meta *analysis.Metadata) *OnlineAnalyzer {
	return &OnlineAnalyzer{meta: meta}
}

// ObserveUpdate ingests one BGP UPDATE the route server processed,
// expanding it into RTBH control updates exactly as the batch MRT
// parser would.
func (a *OnlineAnalyzer) ObserveUpdate(ts time.Time, peer uint32, upd *bgp.Update) {
	a.mu.Lock()
	a.updates = analysis.ExpandUpdate(a.updates, ts, peer, upd)
	a.mu.Unlock()
}

// ObserveFlow ingests one collected flow record (copied; the caller may
// reuse rec).
func (a *OnlineAnalyzer) ObserveFlow(rec *ipfix.FlowRecord) {
	a.mu.Lock()
	a.flows = append(a.flows, *rec)
	a.mu.Unlock()
}

// Counts reports how much the analyzer has accumulated so far.
func (a *OnlineAnalyzer) Counts() (updates int, flows int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.updates), int64(len(a.flows))
}

// Snapshot runs the full analysis pipeline over everything observed so
// far and returns the report. Safe to call at any time, including while
// the streams are still being fed; the snapshot covers a consistent
// prefix of each stream.
func (a *OnlineAnalyzer) Snapshot(opts Options) (*Report, error) {
	a.mu.Lock()
	updates := append([]analysis.ControlUpdate(nil), a.updates...)
	flows := append([]ipfix.FlowRecord(nil), a.flows...)
	a.mu.Unlock()

	// The batch parser sorts by time after reading the archive; the live
	// stream arrives in processing order, which equal-timestamp stability
	// preserves.
	analysis.SortUpdates(updates)
	return NewDataset(a.meta, updates, flows).Analyze(opts)
}

// Final is the report over the drained streams: call it after the live
// run has finished (or been gracefully interrupted and drained). It is
// Snapshot at a moment when nothing more will arrive.
func (a *OnlineAnalyzer) Final(opts Options) (*Report, error) {
	return a.Snapshot(opts)
}
