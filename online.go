package rtbh

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/events"
	"repro/internal/analysis/mitigation"
	"repro/internal/analysis/pipeline"
	"repro/internal/bgp"
	"repro/internal/federation"
	"repro/internal/ipfix"
	"repro/internal/obs"
)

// ControlUpdate is the public name of the expanded RTBH control-plane
// update record.
type ControlUpdate = analysis.ControlUpdate

// sealHorizon is how far a flow record must lie behind the control-plane
// watermark before the online analyzer folds it into the incremental
// operators and releases it. events.PreWindow covers the longest
// look-back any stage performs (a future event's 72-hour pre-window);
// the extra hour generously covers every shorter-range gate (the
// 10-minute reaction buffer, the ±2s time-alignment search). A record
// older than this can never be re-attributed by an update that has not
// arrived yet, so observing it through the operators now is final (see
// DESIGN.md, "Incremental analysis").
const sealHorizon = events.PreWindow + time.Hour

// sealCheckEvery is how many ingested flow records pass between
// opportunistic seal/compact attempts on the ingest path.
const sealCheckEvery = 4096

// onlineMetrics is the optional obs instrumentation of the online path.
type onlineMetrics struct {
	retainedUpdates  *obs.Gauge
	retainedFlows    *obs.Gauge
	openEventRecords *obs.Gauge
	recordsCompacted *obs.Counter
	snapshotLatency  *obs.Histogram
}

// OnlineAnalyzer accumulates a live run's measurement streams
// incrementally and can produce a Report at any point: a partial
// snapshot while the run is still streaming, or the final report once
// the streams have drained. A report over the complete streams is
// byte-identical (rendered) to analyzing the archived dataset with
// Dataset.Analyze, because both paths feed the same records through the
// same incremental operators in the same order.
//
// Unlike the batch driver, the analyzer does not buffer the flow stream
// forever: once a record falls a seal horizon (~73 hours of stream time)
// behind the newest control update, no future announcement can change
// its attribution, so it is folded into the compact operator state and
// released. Retained memory is therefore bounded by the horizon-sized
// tail of the flow stream plus the per-event aggregates, and Snapshot
// costs O(state + horizon tail), not O(everything ever observed).
//
// ObserveUpdate and ObserveFlow may be called from different goroutines
// (in live mode they are: updates arrive on the route server's delivery
// goroutine, flows on the collector's decode goroutine); Snapshot may be
// called concurrently with both and never blocks ingest — the ingest
// paths only take a mutex held for O(1) appends.
//
// Updates must arrive in non-decreasing timestamp order (the live
// sequencer's delivery order guarantees this); feeding an update older
// than the seal horizon behind the newest one voids the batch-parity
// guarantee for already-sealed records.
type OnlineAnalyzer struct {
	meta  *analysis.Metadata
	delta time.Duration

	// mu guards the O(1) ingest state: stream appends and counters.
	// Ingest never blocks on analysis work.
	mu          sync.Mutex
	updates     []analysis.ControlUpdate
	flowUpdates []analysis.FlowUpdate
	pending     []ipfix.FlowRecord // arrival-order FIFO; [:head] sealed
	flowCount   int64
	watermark   time.Time // newest control-update timestamp

	// opMu guards the incremental operator state and the seal machinery.
	// Lock order: opMu before mu; mu is never held while taking opMu.
	opMu sync.Mutex
	// ops holds the operator state of every sealed record, observing in
	// speculative mode (see pipeline.NewSpeculative).
	ops *pipeline.Pipeline
	// head is the count of pending records already folded into ops.
	head int
	// sortedUpdates/opUpdates cache the time-sorted control stream and
	// how many raw updates it covers; events/index rebuild only when the
	// update stream grew. sortedFlows/opFlows do the same for the
	// FlowSpec stream and its mitigation index.
	sortedUpdates []analysis.ControlUpdate
	opUpdates     int
	sortedFlows   []analysis.FlowUpdate
	opFlows       int

	// initErr records an invalid-metadata failure; Snapshot surfaces it.
	initErr error

	metrics *onlineMetrics
}

// NewOnlineAnalyzer returns an analyzer accumulating against the given
// dataset metadata (side tables, sampling rate, measurement period).
// Events are merged at the paper's default threshold; Snapshot rejects
// Options with a different Delta — the merge threshold shapes the sealed
// per-event state and cannot change per snapshot.
func NewOnlineAnalyzer(meta *analysis.Metadata) *OnlineAnalyzer {
	a := &OnlineAnalyzer{
		meta:  meta,
		delta: events.DefaultDelta,
	}
	a.ops, a.initErr = pipeline.NewSpeculative(meta)
	return a
}

// RegisterMetrics exposes the analyzer's retention and snapshot metrics
// under the "online." prefix: gauges for retained control updates,
// retained (unsealed) flow records and open-event collateral cells, a
// counter of records compacted into operator state, and a snapshot
// latency histogram (milliseconds). Call once, before the run starts.
func (a *OnlineAnalyzer) RegisterMetrics(reg *obs.Registry) {
	a.metrics = &onlineMetrics{
		retainedUpdates:  reg.Gauge("online.retained_updates"),
		retainedFlows:    reg.Gauge("online.retained_flows"),
		openEventRecords: reg.Gauge("online.open_event_records"),
		recordsCompacted: reg.Counter("online.records_compacted"),
		snapshotLatency: reg.Histogram("online.snapshot_latency_ms",
			1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000),
	}
}

// ObserveUpdate ingests one BGP UPDATE the route server processed,
// expanding it into RTBH control updates and FlowSpec actions exactly as
// the batch MRT parser would (the same UPDATE never yields both).
func (a *OnlineAnalyzer) ObserveUpdate(ts time.Time, peer uint32, upd *bgp.Update) {
	a.mu.Lock()
	a.updates = analysis.ExpandUpdate(a.updates, ts, peer, upd)
	a.flowUpdates = analysis.ExpandFlowSpec(a.flowUpdates, ts, peer, upd)
	if ts.After(a.watermark) {
		a.watermark = ts
	}
	a.mu.Unlock()
}

// ObserveControl ingests one already-expanded control update (the
// archive replay path; live mode uses ObserveUpdate).
func (a *OnlineAnalyzer) ObserveControl(u ControlUpdate) {
	a.mu.Lock()
	a.updates = append(a.updates, u)
	if u.Time.After(a.watermark) {
		a.watermark = u.Time
	}
	a.mu.Unlock()
}

// ObserveFlowSpec ingests one already-expanded FlowSpec action (the
// archive replay counterpart of ObserveControl; live mode extracts
// FlowSpec actions from ObserveUpdate).
func (a *OnlineAnalyzer) ObserveFlowSpec(u analysis.FlowUpdate) {
	a.mu.Lock()
	a.flowUpdates = append(a.flowUpdates, u)
	if u.Time.After(a.watermark) {
		a.watermark = u.Time
	}
	a.mu.Unlock()
}

// ObserveFlow ingests one collected flow record (copied; the caller may
// reuse rec). Every sealCheckEvery records it opportunistically folds
// sealed records into the operators — skipped without blocking when a
// Snapshot holds the operator state.
func (a *OnlineAnalyzer) ObserveFlow(rec *ipfix.FlowRecord) {
	a.mu.Lock()
	a.pending = append(a.pending, *rec)
	a.flowCount++
	n := a.flowCount
	a.mu.Unlock()

	if n%sealCheckEvery == 0 && a.opMu.TryLock() {
		a.advanceLocked()
		a.opMu.Unlock()
	}
}

// ObserveFlowBatch ingests one batch of collected flow records (copied;
// the caller keeps ownership of b per the ipfix.RecordBatch contract).
// The ingest lock is taken once per batch and the opportunistic seal
// check fires at the same stream positions as per-record ingest, so the
// analyzer state is identical to feeding the records one at a time.
func (a *OnlineAnalyzer) ObserveFlowBatch(b *ipfix.RecordBatch) {
	if b.Len() == 0 {
		return
	}
	a.mu.Lock()
	a.pending = append(a.pending, b.Recs...)
	before := a.flowCount
	a.flowCount += int64(b.Len())
	n := a.flowCount
	a.mu.Unlock()

	if n/sealCheckEvery != before/sealCheckEvery && a.opMu.TryLock() {
		a.advanceLocked()
		a.opMu.Unlock()
	}
}

// Counts reports how much the analyzer has accumulated so far.
func (a *OnlineAnalyzer) Counts() (updates int, flows int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.updates), a.flowCount
}

// Watermark returns the newest control-update timestamp observed so far
// (the zero time before the first update). The serving layer uses it as
// the default "now" for active-blackhole queries.
func (a *OnlineAnalyzer) Watermark() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.watermark
}

// Period returns the measurement period the analyzer accumulates
// against (the dataset metadata's start and end).
func (a *OnlineAnalyzer) Period() (start, end time.Time) {
	return a.meta.Start, a.meta.End
}

// ingestView returns a consistent view of the ingest state: the slices
// are stable prefixes (elements are never mutated and appends either
// write past the view or relocate the backing array).
func (a *OnlineAnalyzer) ingestView() (updates []analysis.ControlUpdate, flows []analysis.FlowUpdate, pend []ipfix.FlowRecord, w time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.updates, a.flowUpdates, a.pending, a.watermark
}

// advanceLocked brings the operator state up to date: it rebuilds the
// control-plane view if new updates arrived, then folds every pending
// record older than the seal horizon into the operators and accounts the
// retention metrics. Caller holds opMu.
func (a *OnlineAnalyzer) advanceLocked() {
	if a.ops == nil {
		return
	}
	updates, flows, pend, w := a.ingestView()

	if len(updates) != a.opUpdates {
		// The batch parser sorts by time after reading the archive; the
		// live stream arrives in processing order, which equal-timestamp
		// stability preserves.
		sorted := append([]analysis.ControlUpdate(nil), updates...)
		analysis.SortUpdates(sorted)
		evs := events.Merge(sorted, a.delta, a.meta.End)
		ix := events.NewIndex(evs, a.meta.End)
		a.ops.Rebind(evs, ix)
		a.sortedUpdates = sorted
		a.opUpdates = len(updates)
	}

	if len(flows) != a.opFlows {
		// Same rebuild discipline for the FlowSpec view: records seal only
		// once every FlowSpec update that can cover them has arrived, so
		// rebinding never invalidates a sealed observation.
		sorted := append([]analysis.FlowUpdate(nil), flows...)
		analysis.SortFlowUpdates(sorted)
		a.ops.BindFlow(mitigation.NewIndex(sorted, a.meta.End))
		a.sortedFlows = sorted
		a.opFlows = len(flows)
	}

	// Seal strictly in arrival order from the head: a young head record
	// blocks older successors, so the sealed stream plus the replayed
	// tail is always exactly the arrival order — the order the batch
	// pipeline would observe.
	cutoff := w.Add(-sealHorizon)
	sealed := 0
	for a.head < len(pend) && pend[a.head].Start.Before(cutoff) {
		a.ops.Observe(&pend[a.head])
		a.head++
		sealed++
	}

	if m := a.metrics; m != nil {
		if sealed > 0 {
			m.recordsCompacted.Add(int64(sealed))
		}
		m.retainedUpdates.Set(int64(len(updates)))
		m.retainedFlows.Set(int64(len(pend) - a.head))
		m.openEventRecords.Set(int64(a.ops.PendingCells()))
	}

	// Release sealed raw records once they dominate the buffer.
	if a.head > 2*sealCheckEvery && a.head > len(pend)/2 {
		a.mu.Lock()
		remain := make([]ipfix.FlowRecord, len(a.pending)-a.head)
		copy(remain, a.pending[a.head:])
		a.pending = remain
		a.mu.Unlock()
		a.head = 0
	}
}

// Snapshot composes a report over everything observed so far. Safe to
// call at any time, including while the streams are still being fed; the
// snapshot covers a consistent prefix of each stream and its rendered
// output is byte-identical to Dataset.Analyze over that prefix. Cost is
// proportional to the compact operator state plus the records and
// updates that arrived since sealing last caught up — not to the total
// stream length.
//
// opts.Delta must equal the construction-time merge threshold
// (events.DefaultDelta, as in DefaultOptions). opts.Metrics is ignored:
// a snapshot is repeatable, and re-registering the pipeline gauges on
// each call would collide — use RegisterMetrics for the online path's
// own instrumentation.
func (a *OnlineAnalyzer) Snapshot(opts Options) (*Report, error) {
	if a.initErr != nil {
		return nil, a.initErr
	}
	if opts.Delta != a.delta {
		return nil, fmt.Errorf("rtbh: online snapshot delta %v does not match analyzer delta %v", opts.Delta, a.delta)
	}
	start := time.Now()

	a.opMu.Lock()
	defer a.opMu.Unlock()
	a.advanceLocked()

	// Copy-on-snapshot: clone the compact operator state and replay the
	// unsealed tail through the clone, giving the exact state of a batch
	// pass over the full prefix while a.ops keeps accepting seals.
	_, _, pend, _ := a.ingestView()
	clone := a.ops.Clone()
	for i := a.head; i < len(pend); i++ {
		clone.Observe(&pend[i])
	}
	report := composeReport(a.meta, a.sortedUpdates, clone, opts)

	if m := a.metrics; m != nil {
		m.snapshotLatency.Observe(time.Since(start).Milliseconds())
	}
	return report, nil
}

// Final is the report over the drained streams: call it after the live
// run has finished (or been gracefully interrupted and drained). It is
// Snapshot at a moment when nothing more will arrive.
func (a *OnlineAnalyzer) Final(opts Options) (*Report, error) {
	return a.Snapshot(opts)
}

// FederationState reduces everything observed so far to a federation
// snapshot: the analyzer's time-sorted control stream plus the
// finalized, marshaled pipeline state over a consistent prefix of the
// flow stream. Like Snapshot it never disturbs the analyzer's own
// state — the clone absorbs the unsealed tail and is finalized, so the
// shipped state is interchangeable with a batch pass over the same
// records (see internal/federation).
func (a *OnlineAnalyzer) FederationState(ixp int, seq uint64, clockOffset time.Duration) (*federation.Snapshot, error) {
	if a.initErr != nil {
		return nil, a.initErr
	}
	a.opMu.Lock()
	defer a.opMu.Unlock()
	a.advanceLocked()

	_, _, pend, _ := a.ingestView()
	clone := a.ops.Clone()
	for i := a.head; i < len(pend); i++ {
		clone.Observe(&pend[i])
	}
	clone.Finalize()
	state, err := clone.MarshalState()
	if err != nil {
		return nil, err
	}
	return &federation.Snapshot{
		IXP:         ixp,
		Seq:         seq,
		ClockOffset: clockOffset,
		Updates:     append([]analysis.ControlUpdate(nil), a.sortedUpdates...),
		State:       state,
	}, nil
}
