package rtbh_test

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

// onlineTestOpts are the analysis options shared by the snapshot tests:
// the paper's parameters with the Fig 10 sweep disabled and a coarser
// Fig 2 grid, so each of the many batch references stays cheap. Both
// sides of every comparison use the same options, so parity is
// unaffected.
func onlineTestOpts() rtbh.Options {
	opts := rtbh.DefaultOptions()
	opts.OffsetStep = 20 * time.Millisecond
	opts.SweepDeltas = nil
	opts.Workers = 1
	return opts
}

// renderSnapshot renders a report plus its cleaning counters, the same
// shape the parallel parity test byte-compares.
func renderSnapshot(t *testing.T, report *rtbh.Report) []byte {
	t.Helper()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "records %d/%d/%d/%d events %d\n",
		report.TotalRecords, report.InternalRecords,
		report.AttributedRecords, report.DroppedRecords, len(report.Events))
	textreport.RenderAll(&buf, report)
	return buf.Bytes()
}

// onlineTestDataset simulates the shared snapshot-test world and loads
// its flow archive into memory so prefixes of the stream can be replayed.
func onlineTestDataset(t *testing.T) (*rtbh.Dataset, []rtbh.FlowRecord) {
	t.Helper()
	dir, err := os.MkdirTemp("", "rtbh-online-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	cfg := rtbh.TestConfig()
	cfg.Seed = 0x0B5E55ED
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	var flows []rtbh.FlowRecord
	if err := ds.EachFlow(func(rec *rtbh.FlowRecord) error {
		flows = append(flows, *rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(flows) == 0 || len(ds.Updates) == 0 {
		t.Fatalf("empty test world: %d updates, %d flows", len(ds.Updates), len(flows))
	}
	return ds, flows
}

// TestOnlineSnapshotCutPoints feeds one OnlineAnalyzer incrementally and
// snapshots it at several cut points of the streams. Each mid-stream
// snapshot must render byte-identical to a cold batch analysis of
// exactly the prefix fed so far — the incremental-operator engine and
// the event-scoped retention scheme may never show through in the
// output (DESIGN.md, "Incremental analysis") — and the snapshot
// counters must grow monotonically from cut to cut.
func TestOnlineSnapshotCutPoints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a test-scale world and analyzes several prefixes of it")
	}
	ds, flows := onlineTestDataset(t)
	opts := onlineTestOpts()

	a := rtbh.NewOnlineAnalyzer(ds.Meta)
	cuts := []int{8, 4, 2, 1} // denominators: 1/8, 1/4, 1/2, all
	fedUpd, fedFlow := 0, 0
	var prevRecords, prevAttributed, prevDropped int64
	prevEvents := 0
	for _, div := range cuts {
		u, f := len(ds.Updates)/div, len(flows)/div
		for ; fedUpd < u; fedUpd++ {
			a.ObserveControl(ds.Updates[fedUpd])
		}
		for ; fedFlow < f; fedFlow++ {
			a.ObserveFlow(&flows[fedFlow])
		}

		snap, err := a.Snapshot(opts)
		if err != nil {
			t.Fatalf("cut 1/%d: snapshot: %v", div, err)
		}
		batch, err := rtbh.NewDataset(ds.Meta, ds.Updates[:u], flows[:f]).Analyze(opts)
		if err != nil {
			t.Fatalf("cut 1/%d: batch reference: %v", div, err)
		}
		got, want := renderSnapshot(t, snap), renderSnapshot(t, batch)
		if !bytes.Equal(got, want) {
			gotLines, wantLines := bytes.Split(got, []byte("\n")), bytes.Split(want, []byte("\n"))
			for i := range wantLines {
				if i >= len(gotLines) || !bytes.Equal(gotLines[i], wantLines[i]) {
					t.Fatalf("cut 1/%d (%d updates, %d flows): snapshot diverges from batch at line %d:\nbatch:  %s\nonline: %s",
						div, u, f, i+1, wantLines[i], gotLines[i])
				}
			}
			t.Fatalf("cut 1/%d: snapshot has %d extra lines", div, len(gotLines)-len(wantLines))
		}

		if snap.TotalRecords < prevRecords || snap.AttributedRecords < prevAttributed ||
			snap.DroppedRecords < prevDropped || len(snap.Events) < prevEvents {
			t.Fatalf("cut 1/%d: snapshot counts regressed: records %d->%d attributed %d->%d dropped %d->%d events %d->%d",
				div, prevRecords, snap.TotalRecords, prevAttributed, snap.AttributedRecords,
				prevDropped, snap.DroppedRecords, prevEvents, len(snap.Events))
		}
		prevRecords, prevAttributed = snap.TotalRecords, snap.AttributedRecords
		prevDropped, prevEvents = snap.DroppedRecords, len(snap.Events)
	}
	if prevRecords == 0 || prevEvents == 0 {
		t.Fatalf("final snapshot empty: %d records, %d events", prevRecords, prevEvents)
	}
}

// TestOnlineSnapshotConcurrent exercises the live-mode contract under
// the race detector: updates and flows arrive on separate goroutines
// (as they do from the route server and the collector) while a third
// goroutine snapshots continuously. Ingest must never block on a
// snapshot, successive snapshot counts must be monotonically
// non-decreasing, and the snapshot after both streams drain must be
// byte-identical to the batch analysis of the full archive.
func TestOnlineSnapshotConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a test-scale world and snapshots it under concurrent ingest")
	}
	ds, flows := onlineTestDataset(t)
	opts := onlineTestOpts()

	a := rtbh.NewOnlineAnalyzer(ds.Meta)
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := range ds.Updates {
			a.ObserveControl(ds.Updates[i])
		}
	}()
	go func() {
		defer wg.Done()
		for i := range flows {
			a.ObserveFlow(&flows[i])
		}
	}()
	go func() { wg.Wait(); close(done) }()

	var prevRecords int64
	prevEvents := 0
	for stop := false; !stop; {
		select {
		case <-done:
			stop = true
		default:
		}
		snap, err := a.Snapshot(opts)
		if err != nil {
			t.Fatalf("concurrent snapshot: %v", err)
		}
		if snap.TotalRecords < prevRecords || len(snap.Events) < prevEvents {
			t.Fatalf("snapshot counts regressed under concurrent ingest: records %d->%d events %d->%d",
				prevRecords, snap.TotalRecords, prevEvents, len(snap.Events))
		}
		prevRecords, prevEvents = snap.TotalRecords, len(snap.Events)
	}

	final, err := a.Final(opts)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	got, want := renderSnapshot(t, final), renderSnapshot(t, batch)
	if !bytes.Equal(got, want) {
		t.Fatalf("final online report diverges from batch (%d vs %d bytes)", len(got), len(want))
	}
	if final.TotalRecords != int64(len(flows)) {
		t.Fatalf("final report covers %d records, stream had %d", final.TotalRecords, len(flows))
	}
}
