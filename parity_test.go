package rtbh_test

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/textreport"
)

// TestAnalyzeParallelParity runs a scenario-generated flow archive through
// the sequential and the sharded parallel runner and demands byte-identical
// rendered reports for every worker count. This is the end-to-end face of
// the shard-and-merge determinism guarantee (DESIGN.md, "Parallel
// pipeline"); the aggregator-level counterpart lives in
// internal/analysis/pipeline.
func TestAnalyzeParallelParity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates and analyzes a full test-scale world")
	}
	dir, err := os.MkdirTemp("", "rtbh-parity-*")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cfg := rtbh.TestConfig()
	cfg.Seed = 0xBADC0FFEE
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}

	render := func(workers int) []byte {
		t.Helper()
		opts := rtbh.DefaultOptions()
		opts.OffsetStep = 20 * time.Millisecond
		opts.Workers = workers
		report, err := ds.Analyze(opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		fmt.Fprintf(&buf, "records %d/%d/%d/%d events %d\n",
			report.TotalRecords, report.InternalRecords,
			report.AttributedRecords, report.DroppedRecords, len(report.Events))
		textreport.RenderAll(&buf, report)
		return buf.Bytes()
	}

	ref := render(1)
	if len(ref) < 1000 {
		t.Fatalf("reference report suspiciously small (%d bytes)", len(ref))
	}
	for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0)} {
		got := render(workers)
		if bytes.Equal(got, ref) {
			continue
		}
		refLines, gotLines := bytes.Split(ref, []byte("\n")), bytes.Split(got, []byte("\n"))
		for i := range refLines {
			if i >= len(gotLines) || !bytes.Equal(refLines[i], gotLines[i]) {
				t.Fatalf("workers=%d: report diverges at line %d:\nsequential: %s\nparallel:   %s",
					workers, i+1, refLines[i], gotLines[i])
			}
		}
		t.Fatalf("workers=%d: parallel report has %d extra lines", workers, len(gotLines)-len(refLines))
	}
}
