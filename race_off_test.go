//go:build !race

package rtbh_test

// raceDetectorEnabled reports whether this test binary was built with
// -race. Latency assertions calibrate against it: the detector slows a
// full-world snapshot compose by roughly an order of magnitude.
const raceDetectorEnabled = false
