package rtbh

import (
	"time"

	"repro/internal/analysis"
	"repro/internal/analysis/anomaly"
	"repro/internal/analysis/events"
	"repro/internal/analysis/hosts"
	"repro/internal/analysis/load"
	"repro/internal/analysis/pipeline"
	"repro/internal/analysis/usecase"
	"repro/internal/analysis/visibility"
	"repro/internal/ipfix"
	"repro/internal/radviz"
)

// flowRecord aliases the canonical data-plane record.
type flowRecord = ipfix.FlowRecord

// recordBatch aliases the pooled record batch of the hot streaming path.
type recordBatch = ipfix.RecordBatch

// FlowRecord is the public name of the sampled-packet record type.
type FlowRecord = ipfix.FlowRecord

// composeReport assembles every figure/table from the finished pipeline
// state and the (time-sorted) control-update stream. Both the batch
// driver and the online analyzer's Snapshot call it: the pipeline carries
// the flow-derived operator state, and the control-plane figures are
// recomputed from the updates — they are cheap pure functions of a stream
// several orders of magnitude smaller than the flow archive.
func composeReport(meta *analysis.Metadata, updates []analysis.ControlUpdate, p *pipeline.Pipeline, opts Options) *Report {
	r := &Report{
		TotalRecords:      p.TotalRecords,
		InternalRecords:   p.InternalRecords,
		AttributedRecords: p.FinalAttributed(),
		DroppedRecords:    p.DroppedRecords,
		Events:            p.Events,
	}

	// Control-plane figures.
	r.Fig3 = load.Compute(updates, meta.Start, meta.End)
	peers := make([]uint32, 0, len(meta.MemberByMAC))
	for _, asn := range meta.MemberByMAC {
		peers = append(peers, asn)
	}
	r.Fig4 = visibility.Compute(updates, peers, meta.Start, meta.End, opts.VisibilityInterval)
	r.Fig10, r.Fig10LowerBound = sweep(updates, meta.End, opts)

	// Data-plane: time alignment.
	r.Fig2 = p.Align.Estimate(opts.OffsetStep)

	// Drop statistics.
	r.Fig5 = p.Drop.ByLength()
	r.Fig5AvgPkts, r.Fig5AvgBytes = p.Drop.AverageDropRate()
	r.Fig6Slash24 = p.Drop.DropRateCDF(24, opts.MinEventPkts)
	r.Fig6Slash32 = p.Drop.DropRateCDF(32, opts.MinEventPkts)
	r.EventDrops = p.Drop.EventStats()
	r.Fig7 = p.Drop.TopSources(opts.TopSources)
	r.Fig7Classes = p.Drop.ClassifyTopSources(opts.TopSources)
	r.Fig8 = p.Drop.TypesOfTopSources(opts.TopSources, meta.PDB)

	// Anomaly analysis. The EWMA threshold is relative; the absolute
	// anomaly support floor derives from the dataset's traffic scale.
	r.Verdicts = p.Anomaly.AnalyzeScaled(p.Events, meta.End, opts.Threshold, meta.MagnitudeScale())
	r.Table2 = anomaly.Classify(r.Verdicts)
	lastMax, withPreData := 0, 0
	var anomalyAndDataIDs []int
	for i := range r.Verdicts {
		v := &r.Verdicts[i]
		if v.HasPreData {
			withPreData++
			r.Fig11PreDataSlots = append(r.Fig11PreDataSlots, v.PreDataSlots)
		} else {
			r.Fig11NoData++
		}
		r.Fig12 = append(r.Fig12, v.Anomalies...)
		for f := range v.AmpFactor {
			if v.AmpFactor[f] > 0 {
				r.Fig13[f] = append(r.Fig13[f], v.AmpFactor[f])
			}
		}
		if v.AmpFactor[anomaly.FeatPackets] > 0 && v.LastSlotIsMax {
			lastMax++
		}
		if v.HasEventData {
			r.EventsWithData++
			if v.Within10Min {
				r.AnomalyAndData++
				anomalyAndDataIDs = append(anomalyAndDataIDs, v.EventID)
			}
		}
	}
	// Per §5.3, the share is over events with pre-window data.
	if withPreData > 0 {
		r.Fig13LastSlotMax = float64(lastMax) / float64(withPreData)
	}

	// Protocol mix, filtering potential and AS participation over events
	// with a preceding anomaly and during-event data (§5.4-§5.5).
	r.ProtoShares = p.Proto.Shares(anomalyAndDataIDs)
	r.Table3, r.Table3Events = p.Proto.ProtocolCountDist(anomalyAndDataIDs)
	r.Fig14 = p.Proto.FilterableShares(anomalyAndDataIDs)
	r.Fig14FullyFilterable = p.Proto.FullyFilterableShare(anomalyAndDataIDs)
	r.Fig15Origin = p.Proto.OriginParticipation(anomalyAndDataIDs)
	r.Fig15Handover = p.Proto.HandoverParticipation(anomalyAndDataIDs)
	r.Fig15Scale = p.Proto.Scale(anomalyAndDataIDs)

	// Host profiling.
	profiles := p.ComposeProfiles(opts.MinActiveDays)
	r.Whitelist = p.ComposeWhitelist(opts.MinActiveDays)
	r.Fig17 = profiles
	proj := radviz.New(hosts.NumFeatures)
	for i := range profiles {
		r.Fig16 = append(r.Fig16, proj.Project(profiles[i].Features[:]))
	}
	r.Table4 = hosts.Types(profiles, meta.IP2AS, meta.PDB)

	// Collateral damage and use cases.
	r.Fig18 = p.ComposeCollateral(profiles).Result()
	r.Fig19 = usecase.Classify(p.Events, r.Verdicts, meta.End)

	// Table 5: the RTBH-vs-FlowSpec mitigation comparison.
	r.Table5 = p.Mit.Compose()
	return r
}

// sweep runs the Fig 10 merge-threshold sweep.
func sweep(updates []analysis.ControlUpdate, periodEnd time.Time, opts Options) ([]SweepPoint, float64) {
	if len(opts.SweepDeltas) == 0 {
		return nil, 0
	}
	return events.Sweep(updates, opts.SweepDeltas, periodEnd)
}
