// Package rtbh reproduces the measurement study "Down the Black Hole:
// Dismantling Operational Practices of BGP Blackholing at IXPs" (IMC
// 2019) end to end: it simulates a large IXP operating a remotely
// triggered blackholing (RTBH) service — route server, member policies,
// switching fabric with blackhole MAC, 1:N packet sampling, DDoS attacks
// and baseline traffic — and provides the full analysis pipeline that
// regenerates every figure and table of the paper from the resulting
// control-plane (MRT) and data-plane (IPFIX) archives.
//
// Typical use:
//
//	cfg := rtbh.TestConfig()
//	sum, err := rtbh.Simulate(cfg, dir)       // writes MRT+IPFIX+metadata
//	ds, err := rtbh.OpenDataset(dir)          // load what an analyst gets
//	report, err := ds.Analyze(rtbh.DefaultOptions())
//
// The simulation and the analysis share no state beyond the dataset
// files: the analysis only sees what the paper's authors saw (BGP
// messages, sampled flow records, the member interface database, routing
// tables and PeeringDB), plus an optional ground-truth file used by the
// experiment harness to validate recovered results.
package rtbh

import (
	"repro/internal/scenario"
)

// Config parameterizes a simulated measurement period. It is an alias of
// the scenario configuration so that all knobs are available without
// importing internal packages.
type Config = scenario.Config

// GroundTruth is the machine-readable truth the simulator emits alongside
// the datasets.
type GroundTruth = scenario.GroundTruth

// DefaultConfig returns the paper-scale world: 104 days, 830 members,
// ~34k RTBH events, 1:10,000 sampling. Simulation takes about two
// minutes and produces ~27M flow records (~1.4 GB of IPFIX).
func DefaultConfig() Config { return scenario.DefaultConfig() }

// TestConfig returns a miniature world for tests and quick exploration.
func TestConfig() Config { return scenario.TestConfig() }

// BenchConfig returns the mid-size world used by the benchmark harness.
func BenchConfig() Config { return scenario.BenchConfig() }
