package rtbh

import (
	"math"
	"os"
	"sync"
	"testing"
	"time"
)

// sharedRun simulates one TestConfig world into a temp dir and analyzes
// it once; all integration tests share the result.
var sharedRun struct {
	once    sync.Once
	dir     string
	sum     *SimulationSummary
	ds      *Dataset
	report  *Report
	failure error
}

func run(t *testing.T) (*SimulationSummary, *Dataset, *Report) {
	t.Helper()
	sharedRun.once.Do(func() {
		dir, err := os.MkdirTemp("", "rtbh-e2e-*")
		if err != nil {
			sharedRun.failure = err
			return
		}
		// The temp dir is kept for the process lifetime; datasets are a
		// few tens of MB at test scale.
		cfg := TestConfig()
		sum, err := Simulate(cfg, dir)
		if err != nil {
			sharedRun.failure = err
			return
		}
		ds, err := OpenDataset(dir)
		if err != nil {
			sharedRun.failure = err
			return
		}
		opts := DefaultOptions()
		opts.OffsetStep = 20 * time.Millisecond
		report, err := ds.Analyze(opts)
		if err != nil {
			sharedRun.failure = err
			return
		}
		// The dir must outlive the analysis: EachFlow re-opens the flow
		// archive on every call.
		sharedRun.dir = dir
		sharedRun.sum, sharedRun.ds, sharedRun.report = sum, ds, report
	})
	if sharedRun.failure != nil {
		t.Fatal(sharedRun.failure)
	}
	return sharedRun.sum, sharedRun.ds, sharedRun.report
}

func TestEndToEndDatasetRoundTrip(t *testing.T) {
	sum, ds, _ := run(t)
	if sum.FlowRecords == 0 || sum.ControlMsgs == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// The MRT round trip preserves every RTBH update.
	if len(ds.Updates) != sum.Announcements+sum.Withdrawals {
		t.Fatalf("updates = %d, want %d announcements + %d withdrawals",
			len(ds.Updates), sum.Announcements, sum.Withdrawals)
	}
	// The IPFIX round trip preserves every record.
	var n int64
	ds.EachFlow(func(*FlowRecord) error { n++; return nil })
	if n != sum.FlowRecords {
		t.Fatalf("flow records = %d, want %d", n, sum.FlowRecords)
	}
	if ds.Truth == nil {
		t.Fatal("ground truth not loaded")
	}
}

func TestEventReconstruction(t *testing.T) {
	_, ds, r := run(t)
	truthEvents := len(ds.Truth.Events)
	got := len(r.Events)
	// The 10-minute merge must recover the planned events within a few
	// percent (boundary effects are possible, systematic splits are not).
	if got < truthEvents*95/100 || got > truthEvents*105/100 {
		t.Fatalf("reconstructed %d events, ground truth %d", got, truthEvents)
	}
}

func TestFig2TimeOffsetRecovered(t *testing.T) {
	_, ds, r := run(t)
	if r.Fig2.Dropped == 0 {
		t.Fatal("no dropped records for MLE")
	}
	// The injected skew is -40ms (data behind control), so aligning data
	// to control requires +40ms.
	want := -time.Duration(ds.Truth.ClockOffsetMS) * time.Millisecond
	if d := (r.Fig2.BestOffset - want); d < -30*time.Millisecond || d > 30*time.Millisecond {
		t.Fatalf("best offset = %v, want ~%v", r.Fig2.BestOffset, want)
	}
	if r.Fig2.BestOverlap < 0.9 {
		t.Fatalf("best overlap = %v, want > 0.9 (paper: 99.4%%)", r.Fig2.BestOverlap)
	}
}

func TestFig3Load(t *testing.T) {
	_, _, r := run(t)
	if r.Fig3.AvgActive <= 0 || r.Fig3.MaxActive < int(r.Fig3.AvgActive) {
		t.Fatalf("load = %+v", r.Fig3)
	}
	if r.Fig3.Peers == 0 || r.Fig3.OriginASes < r.Fig3.Peers {
		t.Fatalf("peers=%d origins=%d (each peer announces for >=1 origin AS)",
			r.Fig3.Peers, r.Fig3.OriginASes)
	}
}

func TestFig4TargetedEpochVisible(t *testing.T) {
	_, _, r := run(t)
	// During the targeted epoch some peers must miss a noticeable share.
	if r.Fig4.PeakMax < 0.005 {
		t.Fatalf("peak max hidden share = %v, want an excursion", r.Fig4.PeakMax)
	}
	// Targeting is the exception overall.
	if r.Fig4.TargetedShare > 0.3 {
		t.Fatalf("targeted share = %v, want a minority", r.Fig4.TargetedShare)
	}
	if r.Fig4.PeakMax < r.Fig4.PeakP50 {
		t.Fatal("quantile ordering violated")
	}
}

func TestFig5DropRatesByLength(t *testing.T) {
	_, _, r := run(t)
	var s32, s24 *LengthStat
	for i := range r.Fig5 {
		switch r.Fig5[i].PrefixLen {
		case 32:
			s32 = &r.Fig5[i]
		case 24:
			s24 = &r.Fig5[i]
		}
	}
	if s32 == nil {
		t.Fatal("no /32 traffic")
	}
	// Paper: /32 drops ~50% of packets; /32 carries ~99.9% of traffic.
	if rate := s32.DropRatePkts(); rate < 0.3 || rate > 0.7 {
		t.Fatalf("/32 drop rate = %v, want ~0.5", rate)
	}
	if s32.TrafficSharePkts < 0.9 {
		t.Fatalf("/32 traffic share = %v, want dominant", s32.TrafficSharePkts)
	}
	if s24 != nil && s24.TotalPkts() > 500 {
		if rate := s24.DropRatePkts(); rate < 0.8 {
			t.Fatalf("/24 drop rate = %v, want > 0.8 (paper: 93-99%%)", rate)
		}
	}
	if r.Fig5AvgPkts <= 0.2 || r.Fig5AvgPkts >= 0.8 {
		t.Fatalf("average drop rate = %v", r.Fig5AvgPkts)
	}
}

func TestFig6DropRateDistributions(t *testing.T) {
	_, _, r := run(t)
	if r.Fig6Slash32.Len() < 20 {
		t.Fatalf("only %d /32 events with traffic", r.Fig6Slash32.Len())
	}
	med := r.Fig6Slash32.Quantile(0.5)
	if med < 0.25 || med > 0.75 {
		t.Fatalf("/32 median drop rate = %v, want ~0.53", med)
	}
	// Wide spread: quartiles clearly apart (paper: 30% / 53% / 88%).
	q1, q3 := r.Fig6Slash32.Quantile(0.25), r.Fig6Slash32.Quantile(0.75)
	if q3-q1 < 0.2 {
		t.Fatalf("/32 drop-rate IQR = %v..%v, want a wide spread", q1, q3)
	}
}

func TestFig7SourceBehaviourClasses(t *testing.T) {
	_, _, r := run(t)
	c := r.Fig7Classes
	total := c.Acceptors + c.Rejectors + c.Inconsistent
	if total == 0 {
		t.Fatal("no top sources")
	}
	// All three behaviours present; rejectors are the plurality (paper:
	// 55 rejectors / 32 acceptors / 13 inconsistent).
	if c.Acceptors == 0 || c.Rejectors == 0 || c.Inconsistent == 0 {
		t.Fatalf("classes = %+v", c)
	}
	if c.Rejectors <= c.Inconsistent {
		t.Fatalf("rejectors (%d) should outnumber inconsistent (%d)", c.Rejectors, c.Inconsistent)
	}
	if c.TopShare < 0.5 {
		t.Fatalf("top sources carry %v of traffic, want the bulk", c.TopShare)
	}
}

func TestFig10MergeSweep(t *testing.T) {
	_, _, r := run(t)
	if len(r.Fig10) == 0 {
		t.Fatal("no sweep points")
	}
	// Fraction decreases with delta and flattens after ~10 minutes.
	at1 := r.Fig10[0].Fraction
	var at10, at30 float64
	for _, p := range r.Fig10 {
		switch p.Delta {
		case 10 * time.Minute:
			at10 = p.Fraction
		case 30 * time.Minute:
			at30 = p.Fraction
		}
	}
	if !(at1 > at10) {
		t.Fatalf("fraction at 1m (%v) not above 10m (%v)", at1, at10)
	}
	if at10-at30 > 0.35*(at1-at10) {
		t.Fatalf("curve not flat after 10m: 1m=%v 10m=%v 30m=%v", at1, at10, at30)
	}
	if r.Fig10LowerBound <= 0 || r.Fig10LowerBound > at30 {
		t.Fatalf("lower bound = %v", r.Fig10LowerBound)
	}
}

func TestTable2PreRTBHClasses(t *testing.T) {
	_, _, r := run(t)
	total := float64(r.Table2.Total())
	noData := float64(r.Table2.NoData) / total
	anom := float64(r.Table2.DataAnomaly10Min) / total
	noAnom := float64(r.Table2.DataNoAnomaly) / total
	// Paper: 46% / 27% / 27%. Allow generous bands at test scale.
	if noData < 0.30 || noData > 0.62 {
		t.Fatalf("no-data share = %v, want ~0.46", noData)
	}
	if anom < 0.15 || anom > 0.40 {
		t.Fatalf("anomaly share = %v, want ~0.27", anom)
	}
	if noAnom < 0.12 || noAnom > 0.45 {
		t.Fatalf("data-no-anomaly share = %v, want ~0.27", noAnom)
	}
}

func TestFig12AnomalyOffsets(t *testing.T) {
	_, _, r := run(t)
	if len(r.Fig12) == 0 {
		t.Fatal("no anomalies")
	}
	near, far := 0, 0
	for _, a := range r.Fig12 {
		if a.Level < 1 || a.Level > 5 {
			t.Fatalf("anomaly level = %d", a.Level)
		}
		if a.SlotsBefore <= 2 {
			near++
		} else {
			far++
		}
	}
	// Most anomalies sit within 10 minutes of the event start.
	if near <= far {
		t.Fatalf("anomalies near=%d far=%d, want concentration near the event", near, far)
	}
}

func TestFig13AmplificationFactors(t *testing.T) {
	_, _, r := run(t)
	pk := r.Fig13[0] // packets feature
	if len(pk) == 0 {
		t.Fatal("no amplification factors")
	}
	maxF := 0.0
	for _, f := range pk {
		if f > maxF {
			maxF = f
		}
	}
	// Paper observes multiples up to ~800; demand at least large ones.
	if maxF < 50 {
		t.Fatalf("max amplification factor = %v, want large bursts", maxF)
	}
	if r.Fig13LastSlotMax <= 0 {
		t.Fatal("no events with last-slot maximum")
	}
}

func TestProtocolMixUDPDominant(t *testing.T) {
	_, _, r := run(t)
	if r.ProtoShares.Packets == 0 {
		t.Fatal("no during-event traffic for anomaly events")
	}
	// Paper: 99.5% UDP.
	if r.ProtoShares.UDP < 0.95 {
		t.Fatalf("UDP share = %v, want > 0.95", r.ProtoShares.UDP)
	}
}

func TestTable3ProtocolCounts(t *testing.T) {
	_, _, r := run(t)
	if r.Table3Events == 0 {
		t.Fatal("no events counted")
	}
	// One or two amplification protocols dominate (paper: 40% + 45%).
	if r.Table3[1]+r.Table3[2] < 0.5 {
		t.Fatalf("1-2 protocol share = %v, dist %v", r.Table3[1]+r.Table3[2], r.Table3)
	}
	var sum float64
	for _, v := range r.Table3 {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestFig14FineGrainedFiltering(t *testing.T) {
	_, _, r := run(t)
	if len(r.Fig14) == 0 {
		t.Fatal("no filterable shares")
	}
	// Paper: ~90% of events fully mitigated by the port list.
	if r.Fig14FullyFilterable < 0.75 || r.Fig14FullyFilterable > 0.98 {
		t.Fatalf("fully filterable = %v, want ~0.90", r.Fig14FullyFilterable)
	}
}

func TestFig15Participation(t *testing.T) {
	_, _, r := run(t)
	if r.Fig15Origin.ASes == 0 || r.Fig15Handover.ASes == 0 {
		t.Fatal("no participating ASes")
	}
	// The head of the origin CDF: one AS in a large share of events.
	if len(r.Fig15Origin.Top10) == 0 || r.Fig15Origin.Top10[0] < 0.3 {
		t.Fatalf("top origin participation = %v, want >= 0.3 (paper: 0.60)", r.Fig15Origin.Top10)
	}
	// Paper: top origin AS == top handover AS.
	if r.Fig15Origin.TopAS != r.Fig15Handover.TopAS {
		t.Fatalf("top origin AS%d != top handover AS%d", r.Fig15Origin.TopAS, r.Fig15Handover.TopAS)
	}
	// Many more origin ASes than handover ASes.
	if r.Fig15Origin.ASes <= r.Fig15Handover.ASes {
		t.Fatalf("origins=%d handovers=%d", r.Fig15Origin.ASes, r.Fig15Handover.ASes)
	}
	if r.Fig15Scale.MeanAmplifiers < 5 {
		t.Fatalf("mean amplifiers = %v", r.Fig15Scale.MeanAmplifiers)
	}
}

func TestFig17HostClassification(t *testing.T) {
	_, _, r := run(t)
	if len(r.Fig17) == 0 {
		t.Fatal("no detected hosts")
	}
	servers, clients := 0, 0
	for i := range r.Fig17 {
		switch r.Fig17[i].Kind.String() {
		case "server":
			servers++
		case "client":
			clients++
		}
	}
	if servers == 0 || clients == 0 {
		t.Fatalf("servers=%d clients=%d", servers, clients)
	}
	// Paper: ~4x more clients than servers.
	ratio := float64(clients) / float64(servers)
	if ratio < 1.5 || ratio > 9 {
		t.Fatalf("client:server ratio = %v, want ~4", ratio)
	}
	if len(r.Fig16) != len(r.Fig17) {
		t.Fatalf("RadViz points = %d, profiles = %d", len(r.Fig16), len(r.Fig17))
	}
}

func TestTable4HostTypes(t *testing.T) {
	_, _, r := run(t)
	if r.Table4.Clients == 0 || r.Table4.Servers == 0 {
		t.Fatalf("table4 = %+v", r.Table4)
	}
	// Clients concentrate in Cable/DSL/ISP networks (paper: 60%).
	if r.Table4.ClientTypes["Cable/DSL/ISP"] < 0.35 {
		t.Fatalf("client Cable/DSL share = %v", r.Table4.ClientTypes["Cable/DSL/ISP"])
	}
	// Servers concentrate in Content (paper: 34%) more than clients do.
	if r.Table4.ServerTypes["Content"] <= r.Table4.ClientTypes["Content"] {
		t.Fatalf("server Content share %v not above client %v",
			r.Table4.ServerTypes["Content"], r.Table4.ClientTypes["Content"])
	}
}

func TestFig18CollateralDamage(t *testing.T) {
	_, _, r := run(t)
	if r.Fig18.Events == 0 {
		t.Fatal("no collateral damage observed")
	}
	if r.Fig18.MaxAll <= 0 {
		t.Fatalf("max damage = %d", r.Fig18.MaxAll)
	}
	// Dropped damage can never exceed total damage per event count.
	if len(r.Fig18.DroppedPkts) > len(r.Fig18.AllPkts) {
		t.Fatal("more dropped-damage events than damage events")
	}
}

func TestFig19UseCases(t *testing.T) {
	_, ds, r := run(t)
	shares := map[string]float64{}
	for c, s := range r.Fig19.Shares {
		shares[c.String()] = s
	}
	if shares["infrastructure-protection"] < 0.15 || shares["infrastructure-protection"] > 0.45 {
		t.Fatalf("infrastructure share = %v, want ~0.27", shares["infrastructure-protection"])
	}
	if shares["zombie"] < 0.05 || shares["zombie"] > 0.3 {
		t.Fatalf("zombie share = %v, want ~0.13", shares["zombie"])
	}
	if shares["other"] < 0.3 {
		t.Fatalf("other share = %v, want large (paper: ~0.60)", shares["other"])
	}
	if r.Fig19.SquatPrefixes == 0 || r.Fig19.SquatASes == 0 {
		t.Fatalf("squatting not recovered: %+v", r.Fig19)
	}
	// Cross-check against ground-truth class counts (same order of
	// magnitude; classification is statistical, not exact).
	truthDDoS := ds.Truth.ClassCounts["ddos"]
	got := r.Fig19.Counts[UseCaseInfrastructureProtection]
	if got < truthDDoS*5/10 || got > truthDDoS*15/10 {
		t.Fatalf("infrastructure events = %d, truth %d", got, truthDDoS)
	}
}

func TestCleaningRemovesInternal(t *testing.T) {
	_, _, r := run(t)
	if r.InternalRecords == 0 {
		t.Fatal("no internal records cleaned")
	}
	frac := float64(r.InternalRecords) / float64(r.TotalRecords)
	if frac > 0.01 {
		t.Fatalf("internal share = %v, want tiny", frac)
	}
}

func TestFig11PreDataSparsity(t *testing.T) {
	_, _, r := run(t)
	if r.Fig11NoData == 0 || len(r.Fig11PreDataSlots) == 0 {
		t.Fatalf("fig11: noData=%d withData=%d", r.Fig11NoData, len(r.Fig11PreDataSlots))
	}
	// Many pre-RTBH windows are sparse: a sizable share has few slots.
	sparse := 0
	for _, n := range r.Fig11PreDataSlots {
		if n <= 24 {
			sparse++
		}
	}
	if sparse == 0 {
		t.Fatal("no sparse pre-windows")
	}
}
