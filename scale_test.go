package rtbh_test

import (
	"math"
	"os"
	"testing"
	"time"

	rtbh "repro"
)

// smokeConfig is a miniature world for the traffic-scale smoke test:
// small enough that the x50 run stays test-sized, large enough for
// stable shares.
func smokeConfig() rtbh.Config {
	cfg := rtbh.TestConfig()
	cfg.Seed = 0x5CA1E
	cfg.Days = 14
	cfg.EventsTotal = 300
	cfg.UniqueVictims = 150
	cfg.Members = 60
	cfg.RTBHUsers = 12
	cfg.VictimOriginASes = 16
	cfg.RemoteOriginASes = 200
	return cfg
}

func simulateAnalyze(t *testing.T, cfg rtbh.Config) (*rtbh.SimulationSummary, *rtbh.Report, *rtbh.Dataset) {
	t.Helper()
	dir, err := os.MkdirTemp("", "rtbh-scale-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	sum, err := rtbh.Simulate(cfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	opts := rtbh.DefaultOptions()
	opts.SweepDeltas = nil
	opts.OffsetStep = 100 * time.Millisecond
	report, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sum, report, ds
}

// sharePP fails if two share/rate figures diverge by more than tol.
func sharePP(t *testing.T, name string, a, b, tol float64) {
	t.Helper()
	if math.Abs(a-b) > tol {
		t.Errorf("%s diverged across scales: %.4f vs %.4f", name, a, b)
	}
}

// assertStructureInvariant checks that a traffic multiplier did not
// perturb the planned world or its control plane.
func assertStructureInvariant(t *testing.T, sum1, sum2 *rtbh.SimulationSummary, r1, r2 *rtbh.Report) {
	t.Helper()
	if sum1.Events != sum2.Events || sum1.Hosts != sum2.Hosts || sum1.Members != sum2.Members {
		t.Errorf("world structure diverged: events %d/%d hosts %d/%d members %d/%d",
			sum1.Events, sum2.Events, sum1.Hosts, sum2.Hosts, sum1.Members, sum2.Members)
	}
	if sum1.ControlMsgs != sum2.ControlMsgs || sum1.Announcements != sum2.Announcements {
		t.Errorf("control plane diverged: %d/%d messages, %d/%d announcements",
			sum1.ControlMsgs, sum2.ControlMsgs, sum1.Announcements, sum2.Announcements)
	}
	if len(r1.Events) != len(r2.Events) {
		t.Errorf("merged events diverged: %d vs %d", len(r1.Events), len(r2.Events))
	}
}

// assertSharesInvariant checks that the report's relative figures hold
// across scales. The tolerances absorb sampling noise only.
func assertSharesInvariant(t *testing.T, r1, r2 *rtbh.Report) {
	t.Helper()
	drop1 := float64(r1.DroppedRecords) / float64(r1.AttributedRecords)
	drop2 := float64(r2.DroppedRecords) / float64(r2.AttributedRecords)
	sharePP(t, "dropped/attributed share", drop1, drop2, 0.10)
	sharePP(t, "avg drop rate (pkts)", r1.Fig5AvgPkts, r2.Fig5AvgPkts, 0.10)
	sharePP(t, "fully filterable share", r1.Fig14FullyFilterable, r2.Fig14FullyFilterable, 0.15)
	attrib1 := float64(r1.AttributedRecords) / float64(r1.TotalRecords)
	attrib2 := float64(r2.AttributedRecords) / float64(r2.TotalRecords)
	sharePP(t, "attributed/total share", attrib1, attrib2, 0.10)
}

// TestTrafficScaleSmoke runs the same world at TrafficScale 1 and 50
// (the raw multiplier: sampling untouched) and asserts the scale knob's
// contract: the world's structure — members, events, the whole control
// plane — is untouched, absolute traffic volumes grow by the
// multiplier, and the report's relative figures (drop-rate shares,
// filtering shares) stay where they were. This is the guarantee that
// lets the scale-1 golden suites vouch for paper-scale runs.
func TestTrafficScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two worlds, one at 50x traffic")
	}
	base := smokeConfig()
	scaled := base
	scaled.TrafficScale = 50

	sum1, r1, ds1 := simulateAnalyze(t, base)
	sum50, r50, ds50 := simulateAnalyze(t, scaled)

	if s := ds1.Meta.Scale(); s != 1 {
		t.Errorf("scale-1 metadata Scale() = %g, want 1", s)
	}
	if s := ds50.Meta.Scale(); s != 50 {
		t.Errorf("scaled metadata Scale() = %g, want 50 (traffic_scale must round-trip)", s)
	}
	// Sampling kept at the calibration denominator, so sampled
	// magnitudes are 50x and the anomaly floor must re-derive.
	if ms := ds50.Meta.MagnitudeScale(); ms != 50 {
		t.Errorf("MagnitudeScale() = %g, want 50 at unchanged sampling", ms)
	}

	assertStructureInvariant(t, sum1, sum50, r1, r50)

	// Rate invariant: sampled record volume scales with the multiplier.
	// Sampling is probabilistic per batch, so allow a generous band
	// around the nominal 50x.
	ratio := float64(sum50.FlowRecords) / float64(sum1.FlowRecords)
	if ratio < 25 || ratio > 75 {
		t.Errorf("flow-record volume scaled %.1fx, want ~50x (%d -> %d records)",
			ratio, sum1.FlowRecords, sum50.FlowRecords)
	}
	pktRatio := float64(sum50.PacketsIn) / float64(sum1.PacketsIn)
	if pktRatio < 25 || pktRatio > 75 {
		t.Errorf("offered packet volume scaled %.1fx, want ~50x", pktRatio)
	}

	assertSharesInvariant(t, r1, r50)
}

// TestPaperConfigurationSmoke runs the paper configuration the numeric
// -scale flag builds — TrafficScale 50 with the sampling denominator
// coarsened by the same factor — and asserts its contract: the sampled
// record stream stays at the scale-1 size (that is what keeps a full
// 104-day paper-scale run in minutes), the sampled-magnitude scale is 1
// (so detection constants calibrated at scale 1 apply unchanged), and
// the report's relative figures still match the scale-1 world.
func TestPaperConfigurationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two worlds")
	}
	base := smokeConfig()
	paper := base
	paper.TrafficScale = 50
	paper.SamplingRate = base.SamplingRate * 50

	sum1, r1, _ := simulateAnalyze(t, base)
	sumP, rP, dsP := simulateAnalyze(t, paper)

	if ms := dsP.Meta.MagnitudeScale(); ms != 1 {
		t.Errorf("MagnitudeScale() = %g, want 1 (sampling coarsened in step with traffic)", ms)
	}
	if s := dsP.Meta.Scale(); s != 50 {
		t.Errorf("Scale() = %g, want 50", s)
	}

	assertStructureInvariant(t, sum1, sumP, r1, rP)

	// The whole point of the coupled configuration: 50x the offered
	// packets, roughly scale-1 record volume.
	pktRatio := float64(sumP.PacketsIn) / float64(sum1.PacketsIn)
	if pktRatio < 25 || pktRatio > 75 {
		t.Errorf("offered packet volume scaled %.1fx, want ~50x", pktRatio)
	}
	recRatio := float64(sumP.FlowRecords) / float64(sum1.FlowRecords)
	if recRatio < 0.5 || recRatio > 2 {
		t.Errorf("sampled record volume scaled %.2fx, want ~1x (%d -> %d records)",
			recRatio, sum1.FlowRecords, sumP.FlowRecords)
	}

	assertSharesInvariant(t, r1, rP)
}
