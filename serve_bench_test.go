package rtbh_test

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/serve"
)

// BenchmarkServeSnapshot measures the looking-glass request path at two
// stream lengths: the cached path (requests ride the TTL cache and
// share one immutable report) against the cold path (?maxAge=0, a full
// copy-on-snapshot compose per request). The cache turns a
// compose-bound query into a JSON-encode-bound one, so the cached
// queries/s figure should sit orders of magnitude above the cold one —
// that gap is the whole point of the serving layer (EXPERIMENTS.md,
// "Serving layer throughput").
func BenchmarkServeSnapshot(b *testing.B) {
	for _, days := range []int{14, 28} {
		b.Run(fmt.Sprintf("days=%d", days), func(b *testing.B) {
			benchServeSnapshot(b, days)
		})
	}
}

func benchServeSnapshot(b *testing.B, days int) {
	cfg := rtbh.TestConfig()
	cfg.Days = days
	cfg.EventsTotal = 300
	cfg.UniqueVictims = 150
	cfg.Members = 60
	cfg.RTBHUsers = 12
	cfg.VictimOriginASes = 16
	cfg.RemoteOriginASes = 200
	dir, err := os.MkdirTemp("", "rtbh-serve-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		b.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		b.Fatal(err)
	}
	opts := rtbh.DefaultOptions()
	opts.SweepDeltas = nil
	opts.OffsetStep = 100 * time.Millisecond
	opts.Workers = 1

	a := rtbh.NewOnlineAnalyzer(ds.Meta)
	for i := range ds.Updates {
		a.ObserveControl(ds.Updates[i])
	}
	if err := ds.EachFlow(func(rec *rtbh.FlowRecord) error { a.ObserveFlow(rec); return nil }); err != nil {
		b.Fatal(err)
	}

	srv, err := serve.New(serve.Config{Source: a, Options: opts, MaxAge: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	handler := srv.Handler()

	query := func(b *testing.B, path string) {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rr := httptest.NewRecorder()
		handler.ServeHTTP(rr, req)
		if rr.Code != http.StatusOK {
			b.Fatalf("GET %s: status %d", path, rr.Code)
		}
	}
	query(b, "/api/summary") // warm the cache and seal everything eligible

	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			query(b, "/api/summary")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			query(b, "/api/summary?maxAge=0")
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
	})
}
