package rtbh_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/obs"
	"repro/internal/serve"
)

// serveGet fetches path from the test server and decodes the JSON body
// into out, failing on any non-200 response.
func serveGet(t testing.TB, base, path string, out any) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, resp.StatusCode, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding: %v\n%s", path, err, body)
		}
	}
}

// TestServeConcurrent hammers every looking-glass endpoint from many
// client goroutines while the two-goroutine live ingest pattern of
// TestOnlineSnapshotConcurrent runs underneath. The contract under the
// race detector: every response is a well-formed 200, each client's
// summary counters grow monotonically (each body is one consistent
// snapshot, never a torn mix), ingest is never blocked long enough to
// push a snapshot past the analyzer's latency histogram (no +inf
// observations), and the final uncached summary equals the batch
// analysis of the full archive.
func TestServeConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a test-scale world and serves it under concurrent ingest")
	}
	ds, flows := onlineTestDataset(t)
	opts := onlineTestOpts()

	reg := obs.NewRegistry()
	a := rtbh.NewOnlineAnalyzer(ds.Meta)
	a.RegisterMetrics(reg)

	srv, err := serve.New(serve.Config{
		Source:  a,
		Options: opts,
		MaxAge:  20 * time.Millisecond,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Both ingest goroutines time every Observe call: the longest stall
	// is how long serving ever held up the analyzer's ingest path.
	var ingest sync.WaitGroup
	done := make(chan struct{})
	var controlStallNS, flowStallNS int64
	ingest.Add(2)
	go func() {
		defer ingest.Done()
		for i := range ds.Updates {
			t0 := time.Now()
			a.ObserveControl(ds.Updates[i])
			if d := time.Since(t0).Nanoseconds(); d > controlStallNS {
				controlStallNS = d
			}
		}
	}()
	go func() {
		defer ingest.Done()
		for i := range flows {
			t0 := time.Now()
			a.ObserveFlow(&flows[i])
			if d := time.Since(t0).Nanoseconds(); d > flowStallNS {
				flowStallNS = d
			}
		}
	}()
	go func() { ingest.Wait(); close(done) }()

	// Every endpoint under fire, with a spread of cache policies: some
	// clients ride the TTL cache, some demand fresh snapshots, some read
	// history while captures happen concurrently.
	paths := []string{
		"/api/health",
		"/api/summary",
		"/api/summary?maxAge=0",
		"/api/summary?maxAge=1s",
		"/api/events",
		"/api/active",
		"/api/collateral",
		"/api/usecases",
		"/api/victims",
		"/api/history",
	}
	var clients sync.WaitGroup
	errc := make(chan error, len(paths)+1)
	for _, path := range paths {
		clients.Add(1)
		go func(path string) {
			defer clients.Done()
			var prevRecords int64
			prevEvents := 0
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					errc <- fmt.Errorf("GET %s: %v", path, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errc <- fmt.Errorf("GET %s: reading body: %v", path, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
					return
				}
				// Pace the clients like real pollers; the uncached ones
				// would otherwise serialize on back-to-back snapshots.
				time.Sleep(5 * time.Millisecond)
				if !json.Valid(body) {
					errc <- fmt.Errorf("GET %s: malformed body: %s", path, body)
					return
				}
				if !strings.HasPrefix(path, "/api/summary") {
					continue
				}
				var sum serve.SummaryView
				if err := json.Unmarshal(body, &sum); err != nil {
					errc <- fmt.Errorf("GET %s: decoding summary: %v", path, err)
					return
				}
				// The decoded counters must never regress: each body is
				// one snapshot, not a torn read.
				{
					if sum.TotalRecords < prevRecords || sum.Events < prevEvents {
						errc <- fmt.Errorf("GET %s: counts regressed: records %d->%d events %d->%d",
							path, prevRecords, sum.TotalRecords, prevEvents, sum.Events)
						return
					}
					if sum.AttributedRecords+sum.InternalRecords > sum.TotalRecords {
						errc <- fmt.Errorf("GET %s: inconsistent snapshot: attributed %d + internal %d > total %d",
							path, sum.AttributedRecords, sum.InternalRecords, sum.TotalRecords)
						return
					}
					prevRecords, prevEvents = sum.TotalRecords, sum.Events
				}
			}
		}(path)
	}

	// A history-capture goroutine racing the readers.
	clients.Add(1)
	go func() {
		defer clients.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := srv.CaptureHistory(); err != nil {
				errc <- fmt.Errorf("CaptureHistory: %v", err)
				return
			}
			time.Sleep(50 * time.Millisecond)
		}
	}()

	clients.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The drained, uncached summary must equal the batch analysis.
	batch, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	var final serve.SummaryView
	serveGet(t, ts.URL, "/api/summary?maxAge=0", &final)
	if final.TotalRecords != batch.TotalRecords || final.AttributedRecords != batch.AttributedRecords ||
		final.DroppedRecords != batch.DroppedRecords || final.Events != len(batch.Events) {
		t.Fatalf("final served summary %+v diverges from batch (records %d attributed %d dropped %d events %d)",
			final, batch.TotalRecords, batch.AttributedRecords, batch.DroppedRecords, len(batch.Events))
	}

	// Ingest was never blocked: no Observe call ever waited out a
	// snapshot. A full-world compose takes seconds (tens under the race
	// detector); an ingest path that shared its critical section would
	// blow far past this bound.
	maxStall := time.Duration(max(controlStallNS, flowStallNS))
	t.Logf("max ingest stall: control %v, flow %v",
		time.Duration(controlStallNS), time.Duration(flowStallNS))
	stallBound := time.Second
	if raceDetectorEnabled {
		stallBound = 3 * time.Second
	}
	if maxStall > stallBound {
		t.Fatalf("an Observe call stalled %v: serving blocked ingest", maxStall)
	}

	// And the snapshot latency histogram stayed bounded: snapshots were
	// taken throughout, and none ran past the top finite bucket. The
	// bucket assertion only holds without the race detector — with it,
	// the compose itself is slowed past 5s, which says nothing about
	// the serving layer.
	snap := reg.Snapshot()
	hist, ok := snap.Histograms["online.snapshot_latency_ms"]
	if !ok {
		t.Fatal("online.snapshot_latency_ms not registered")
	}
	if hist.Count == 0 {
		t.Fatal("no snapshots observed during the run")
	}
	if !raceDetectorEnabled {
		for i, bound := range hist.Bounds {
			if bound == math.MaxInt64 && hist.Counts[i] > 0 {
				t.Fatalf("%d of %d snapshots exceeded the top latency bucket (5s)", hist.Counts[i], hist.Count)
			}
		}
	}
	if snap.Counter("serve.cache_hits") == 0 {
		t.Error("TTL cache never hit under concurrent load")
	}
	if snap.Counter("serve.cache_misses") == 0 {
		t.Error("cache never missed (fresh requests should bypass it)")
	}
}
