package rtbh_test

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/detect"
	"repro/internal/federation"
	"repro/internal/serve"
)

// serveGoldenDir holds one JSON fixture per looking-glass endpoint,
// maintained with the shared -update flag (see golden_test.go).
const serveGoldenDir = "testdata/golden/serve"

// serveClock is a manually stepped clock shared with the server under
// test, so cache taken-at stamps and history capture times are fixture
// constants rather than wall-clock noise.
type serveClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *serveClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *serveClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestServeGoldenEndpoints drives the golden scenario to completion
// through the online analyzer, serves it through the looking-glass
// layer, and byte-compares every endpoint's JSON body against its
// checked-in fixture. The server runs on an injected clock and fixed
// Info, so the bodies are fully deterministic; any intended change to
// the wire format is a deliberate -update.
func TestServeGoldenEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates and analyzes a full test-scale world")
	}
	dir := t.TempDir()
	cfg := goldenConfig()
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := rtbh.NewOnlineAnalyzer(ds.Meta)
	// A detector replayed over the same flow stream backs the
	// /api/detections fixture; the final Tick at the period end settles
	// the announce/withdraw lifecycle deterministically.
	det, err := detect.New(detect.Config{
		SamplingRate: ds.Meta.SamplingRate,
		BlackholeMAC: ds.Meta.BlackholeMAC,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Updates {
		a.ObserveControl(ds.Updates[i])
	}
	if err := ds.EachFlow(func(rec *rtbh.FlowRecord) error {
		a.ObserveFlow(rec)
		det.ObserveFlow(rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	det.Tick(ds.Meta.End)

	opts := onlineTestOpts()
	clock := &serveClock{t: time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)}
	srv, err := serve.New(serve.Config{
		Source:  a,
		Options: opts,
		MaxAge:  time.Hour,
		Clock:   clock.now,
		Info:    map[string]string{"scale": "test", "fixture": "golden"},
		Federation: func() (*rtbh.FederatedReport, error) {
			// A deterministic single-exchange federation view: the
			// endpoint's join logic over a report this same world produced.
			rep, err := a.Snapshot(opts)
			if err != nil {
				return nil, err
			}
			return &rtbh.FederatedReport{
				PerIXP: []*rtbh.IXPReport{{IXP: 0, Report: rep}},
				Cross:  &federation.CrossView{},
			}, nil
		},
		Detections: det.Status,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Two history captures five minutes apart, then advance to the
	// serving instant.
	if err := srv.CaptureHistory(); err != nil {
		t.Fatal(err)
	}
	clock.advance(5 * time.Minute)
	if err := srv.CaptureHistory(); err != nil {
		t.Fatal(err)
	}
	clock.advance(5 * time.Minute)

	endpoints := []struct {
		name string
		path string
	}{
		{"summary", "/api/summary"},
		{"mitigation_rtbh_only", "/api/mitigation"},
		{"events", "/api/events"},
		{"active", "/api/active"},
		{"collateral", "/api/collateral"},
		{"usecases", "/api/usecases"},
		{"victims", "/api/victims"},
		{"federation", "/api/federation"},
		{"detections", "/api/detections"},
		{"history", "/api/history"},
		{"history_at", "/api/summary?at=2026-01-02T03:04:00Z"}, // floors to the 03:00 capture
		{"health", "/api/health"},                              // last: history + uptime are settled
	}
	for _, ep := range endpoints {
		t.Run(ep.name, func(t *testing.T) {
			checkServeFixture(t, srv, ep.path, ep.name)
		})
	}
}

// checkServeFixture GETs path from srv and byte-compares the body
// against testdata/golden/serve/<name>.json, rewriting it under -update.
func checkServeFixture(t *testing.T, srv *serve.Server, path, name string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d\n%s", path, rr.Code, rr.Body.Bytes())
	}
	got, err := io.ReadAll(rr.Result().Body)
	if err != nil {
		t.Fatal(err)
	}

	fixture := filepath.Join(serveGoldenDir, name+".json")
	if *updateGolden {
		if err := os.MkdirAll(serveGoldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(fixture, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", fixture, len(got))
	}
	want, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(got, want) {
		diffLines(t, want, got)
		t.Fatalf("GET %s does not match %s (run with -update after intended changes)", path, fixture)
	}
}

// TestServeGoldenMitigation fixtures /api/mitigation over a world where
// the fine-grained path actually fires: the golden scenario re-run under
// the escalating mitigation policy, replayed through the online analyzer
// the way an archive replay would (control, FlowSpec and flow streams
// interleaved by the analyzer's own sealing discipline).
func TestServeGoldenMitigation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates and analyzes a full test-scale world")
	}
	dir := t.TempDir()
	cfg := goldenConfig()
	cfg.MitigationPolicy = "escalate"
	if _, err := rtbh.Simulate(cfg, dir); err != nil {
		t.Fatal(err)
	}
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := rtbh.NewOnlineAnalyzer(ds.Meta)
	for i := range ds.Updates {
		a.ObserveControl(ds.Updates[i])
	}
	for i := range ds.FlowUpdates {
		a.ObserveFlowSpec(ds.FlowUpdates[i])
	}
	if err := ds.EachFlow(func(rec *rtbh.FlowRecord) error {
		a.ObserveFlow(rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	clock := &serveClock{t: time.Date(2026, 1, 2, 3, 0, 0, 0, time.UTC)}
	srv, err := serve.New(serve.Config{
		Source:  a,
		Options: onlineTestOpts(),
		MaxAge:  time.Hour,
		Clock:   clock.now,
		Info:    map[string]string{"scale": "test", "fixture": "golden-mitigation"},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkServeFixture(t, srv, "/api/mitigation", "mitigation")
}
