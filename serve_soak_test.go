package rtbh_test

import (
	"context"
	"testing"
	"time"

	rtbh "repro"
	"repro/internal/serve"

	"net/http/httptest"
)

// TestServeChaosSoak runs the full live stack — BGP over TCP, IPFIX
// over UDP impaired by the lossy-udp fault profile — with the
// looking-glass server mounted on the run's analyzer, and polls the API
// continuously while the run streams. Every polled response must be a
// valid 200, and once the run drains, the uncached served summary must
// equal the batch analysis of the dataset the run wrote: the serving
// layer adds no divergence on top of the chaos-reconciliation contract.
func TestServeChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("streams a live test-scale world under transport faults")
	}
	cfg := rtbh.TestConfig()
	cfg.Seed = 0x5E47E

	dir := t.TempDir()
	reg := rtbh.NewMetricsRegistry()
	lr, err := rtbh.NewLiveRun(cfg, dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.EnableChaos(7, "lossy-udp"); err != nil {
		t.Fatal(err)
	}

	opts := onlineTestOpts()
	srv, err := serve.New(serve.Config{
		Source:  lr.Analyzer(),
		Options: opts,
		MaxAge:  50 * time.Millisecond,
		Metrics: reg,
		Info:    map[string]string{"chaos_profile": "lossy-udp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	runErr := make(chan error, 1)
	go func() {
		_, err := lr.Run(context.Background())
		runErr <- err
	}()

	// Poll a rotating endpoint while the run streams.
	paths := []string{"/api/health", "/api/summary", "/api/active", "/api/events", "/api/history"}
	polls := 0
	running := true
	for running {
		select {
		case err := <-runErr:
			if err != nil {
				t.Fatalf("live run under lossy-udp: %v", err)
			}
			running = false
		default:
			serveGet(t, ts.URL, paths[polls%len(paths)], nil)
			if err := srv.CaptureHistory(); err != nil {
				t.Fatalf("capture during run: %v", err)
			}
			polls++
			time.Sleep(20 * time.Millisecond)
		}
	}
	if polls == 0 {
		t.Fatal("run finished before a single poll landed")
	}
	t.Logf("served %d polls during the live run", polls)

	// The drained, uncached view must equal the batch analysis of the
	// dataset the run wrote.
	ds, err := rtbh.OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ds.Analyze(opts)
	if err != nil {
		t.Fatal(err)
	}
	var final serve.SummaryView
	serveGet(t, ts.URL, "/api/summary?maxAge=0", &final)
	if final.TotalRecords != batch.TotalRecords || final.InternalRecords != batch.InternalRecords ||
		final.AttributedRecords != batch.AttributedRecords || final.DroppedRecords != batch.DroppedRecords ||
		final.Events != len(batch.Events) || final.EventsWithData != batch.EventsWithData {
		t.Fatalf("served final summary %+v diverges from batch (records %d/%d/%d/%d events %d/%d)",
			final, batch.TotalRecords, batch.InternalRecords, batch.AttributedRecords,
			batch.DroppedRecords, len(batch.Events), batch.EventsWithData)
	}

	var events serve.EventsView
	serveGet(t, ts.URL, "/api/events?maxAge=0", &events)
	if events.Count != len(batch.Events) {
		t.Fatalf("served %d events, batch found %d", events.Count, len(batch.Events))
	}
	for i, ev := range events.Events {
		if ev.Prefix != batch.Events[i].Prefix.String() || ev.ID != batch.Events[i].ID {
			t.Fatalf("served event %d = %s (id %d), batch has %s (id %d)",
				i, ev.Prefix, ev.ID, batch.Events[i].Prefix.String(), batch.Events[i].ID)
		}
	}
}
