package rtbh

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/fabric"
	"repro/internal/ipfix"
	"repro/internal/mrt"
	"repro/internal/scenario"
)

// Dataset file names inside a dataset directory.
const (
	FileUpdates  = "updates.mrt"
	FileFlows    = "flows.ipfix"
	FileMetadata = "metadata.json"
	FileIP2AS    = "ip2as.json"
	FilePDB      = "peeringdb.json"
	FileTruth    = "truth.json"
)

// SimulationSummary reports what a simulation produced.
type SimulationSummary struct {
	Events         int
	Hosts          int
	Members        int
	ControlMsgs    int
	Announcements  int
	Withdrawals    int
	FlowRecords    int64
	PacketsIn      int64
	PacketsDropped int64
}

// datasetMeta is the JSON schema of metadata.json: everything an analyst
// legitimately has (no ground truth).
type datasetMeta struct {
	SamplingRate int64     `json:"sampling_rate"`
	Start        time.Time `json:"start"`
	End          time.Time `json:"end"`
	// TrafficScale is the traffic-magnitude multiplier the world was
	// simulated at; analysis thresholds calibrated to scale 1 derive
	// from it. Omitted (0) means 1, so scale-1 metadata is byte-identical
	// to metadata written before the knob existed.
	TrafficScale float64      `json:"traffic_scale,omitempty"`
	BlackholeMAC ipfix.MAC    `json:"blackhole_mac"`
	InternalMACs []ipfix.MAC  `json:"internal_macs"`
	RSASN        uint16       `json:"rs_asn"`
	Members      []memberMeta `json:"members"`
}

type memberMeta struct {
	ASN uint32    `json:"asn"`
	MAC ipfix.MAC `json:"mac"`
}

// Simulate plans and runs the world described by cfg and writes the
// dataset into dir (created if missing): the MRT control-plane archive,
// the IPFIX flow archive, metadata, the IP-to-AS table, the PeeringDB
// snapshot, and the ground truth.
func Simulate(cfg Config, dir string) (*SimulationSummary, error) {
	return SimulateObserved(cfg, dir, nil)
}

// SimulateObserved is Simulate with observability: when reg is non-nil
// the route server and fabric register their metrics ("routeserver.*",
// "fabric.*") on it. Snapshot after the call returns; the fabric's
// ground-truth gauges match the returned summary exactly.
func SimulateObserved(cfg Config, dir string, reg *MetricsRegistry) (*SimulationSummary, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	w, err := scenario.Plan(cfg)
	if err != nil {
		return nil, err
	}

	mrtFile, err := os.Create(filepath.Join(dir, FileUpdates))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	defer mrtFile.Close()
	mrtW := mrt.NewWriter(mrtFile)

	flowFile, err := os.Create(filepath.Join(dir, FileFlows))
	if err != nil {
		return nil, fmt.Errorf("rtbh: %w", err)
	}
	defer flowFile.Close()
	flowW := ipfix.NewWriter(flowFile, 1)

	res, err := scenario.Run(w, scenario.Sinks{
		Control: func(ts time.Time, peerAS uint32, peerIP uint32, msg []byte) {
			rec := mrt.Record{
				Timestamp: ts, PeerAS: peerAS, LocalAS: uint32(w.RSASN),
				PeerIP: peerIP, LocalIP: w.RSIP, Message: msg,
			}
			// The run aborts on the first sink error via the flow sink;
			// control write errors surface at Flush below.
			_ = mrtW.WriteRecord(&rec)
		},
		Flow:    flowW.WriteBatch,
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	if err := mrtW.Flush(); err != nil {
		return nil, fmt.Errorf("rtbh: flushing MRT: %w", err)
	}
	if err := flowW.Flush(); err != nil {
		return nil, fmt.Errorf("rtbh: flushing IPFIX: %w", err)
	}

	if err := writeJSON(filepath.Join(dir, FileMetadata), metaOf(w)); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(dir, FileIP2AS), w.IP2AS.WriteJSON); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(dir, FilePDB), w.PDB.WriteJSON); err != nil {
		return nil, err
	}
	if err := writeFile(filepath.Join(dir, FileTruth), scenario.Truth(w).WriteJSON); err != nil {
		return nil, err
	}

	st := res.FabricStats
	return &SimulationSummary{
		Events:         len(w.Events),
		Hosts:          len(w.Hosts),
		Members:        len(w.Members),
		ControlMsgs:    res.ControlMsgs,
		Announcements:  res.Announcements,
		Withdrawals:    res.Withdrawals,
		FlowRecords:    res.FlowRecords,
		PacketsIn:      st.PacketsIn,
		PacketsDropped: st.PacketsDropped,
	}, nil
}

func metaOf(w *scenario.World) datasetMeta {
	m := datasetMeta{
		SamplingRate: w.Cfg.SamplingRate,
		Start:        w.Cfg.Start,
		End:          w.Cfg.End(),
		BlackholeMAC: fabric.BlackholeMAC,
		InternalMACs: []ipfix.MAC{fabric.InternalMAC},
		RSASN:        w.RSASN,
	}
	if s := w.Cfg.Scale(); s != 1 {
		m.TrafficScale = s
	}
	for _, mem := range w.Members {
		m.Members = append(m.Members, memberMeta{ASN: mem.ASN, MAC: fabric.MemberMAC(mem.ASN)})
	}
	return m
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rtbh: %w", err)
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("rtbh: writing %s: %w", path, err)
	}
	return f.Close()
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("rtbh: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("rtbh: writing %s: %w", path, err)
	}
	return f.Close()
}
